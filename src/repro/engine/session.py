"""High-level user-facing API: index a table column and query it.

:class:`IndexingSession` is the entry point a downstream user of the library
interacts with: register a table, create a (progressive) index on one of its
columns — either by naming an algorithm or by letting the Figure 11 decision
tree choose — and run range / point queries.  Every query transparently
advances the index construction within the configured budget.

Beyond single queries, the session speaks two workload-level dialects:

* :meth:`IndexingSession.execute_batch` answers a whole vector of queries at
  once through the :class:`~repro.engine.batch.BatchExecutor` — progressive
  refinement is interleaved across the batch under one pooled budget and the
  converged tail is answered with vectorized lookups;
* :meth:`IndexingSession.where` answers a multi-column conjunctive predicate
  (``WHERE ra BETWEEN ... AND dec BETWEEN ...``) by driving the most
  selective indexed column and post-filtering the remaining columns with
  vectorized masks.

The session also speaks the mutable substrate's write dialect:
:meth:`IndexingSession.insert` / :meth:`IndexingSession.delete` /
:meth:`IndexingSession.update` land rows in the columns' append-only delta
stores (row-aligned across the table), every read answers over base ∪ delta
exactly, and the indexes absorb the writes progressively under their budget
policies instead of being rebuilt.  :meth:`IndexingSession.status` surfaces
the write/merge counters in a JSON-serializable form.

Example
-------
>>> import numpy as np
>>> from repro import IndexingSession, Table
>>> table = Table({"ra": np.random.default_rng(0).integers(0, 1000, 10_000)})
>>> session = IndexingSession(table)
>>> session.create_index("ra", method="PQ", budget_fraction=0.2)
>>> result = session.between("ra", 100, 200)
>>> result.count > 0
True
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.baselines.full_scan import FullScan
from repro.core.policy import BudgetPolicy, CostModelGreedy, FixedDelta, TimeAdaptive
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.query import ConjunctionResult, Predicate, QueryResult
from repro.engine.batch import BatchExecutor
from repro.engine.decision_tree import recommend_index
from repro.engine.registry import create_index
from repro.errors import ExperimentError, IndexStateError, PendingDeltaError
from repro.storage.column import Column
from repro.storage.membudget import MemoryBudget
from repro.storage.table import Table
from repro.workloads.workload import Workload


def _json_safe(value):
    """Recursively coerce NumPy scalars/arrays so ``json.dumps`` accepts it."""
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    return value


class IndexingSession:
    """Manages progressive indexes over the columns of one table.

    Parameters
    ----------
    table:
        The table whose columns can be indexed.  A bare :class:`Column` (or
        NumPy array) is also accepted and wrapped into a single-column table.
    constants:
        Optional cost-model constants shared by all indexes created in this
        session (calibrate once, reuse everywhere).
    memory_budget:
        Optional byte allowance (or :class:`~repro.storage.membudget.MemoryBudget`)
        for everything the session holds resident: it is attached to every
        column that does not already carry one, switching construction
        kernels, delta logs and overlay buffers to their streaming /
        spilling out-of-core paths.  ``None`` (the default) keeps the
        in-memory engine unchanged.
    """

    def __init__(
        self,
        table,
        constants: CostConstants | None = None,
        memory_budget=None,
    ) -> None:
        if isinstance(table, Table):
            self._table = table
        elif isinstance(table, Column):
            self._table = Table({table.name: table})
        else:
            self._table = Table({"value": Column(table)})
        self._constants = constants
        self.memory_budget = MemoryBudget.coerce(memory_budget)
        if self.memory_budget is not None:
            for name in self._table.column_names:
                column = self._table.column(name)
                if getattr(column, "memory_budget", None) is None:
                    column.memory_budget = self.memory_budget
        self._indexes: Dict[str, BaseIndex] = {}
        # Lazily created FullScan handles for batches on unindexed columns;
        # FullScan.search_many caches its sorted scratch copy, so repeated
        # batches only pay the O(N log N) preparation once per column.
        self._scan_handles: Dict[str, FullScan] = {}
        registry = obs.metrics()
        self._obs_where_seconds = registry.histogram(
            "session.where.seconds",
            help="Conjunctive where() latency (planning + driving index + masks)",
        )
        self._obs_batch_seconds = registry.histogram(
            "session.batch.seconds",
            help="execute_batch() latency for one whole batch",
        )
        self._obs_batch_queries = registry.counter(
            "session.batch.queries",
            help="Individual predicates answered through execute_batch()",
        )

    def _register_index_obs(self, column_name: str, index) -> None:
        """Pull series for an index's own counters (no hot-path cost)."""
        registry = obs.metrics()
        registry.register_pull(
            "index.queries", index, lambda i: i.queries_executed,
            help="Queries answered by this index",
            column=column_name, algorithm=index.name,
        )
        registry.register_pull(
            "index.phase", index, lambda i: i.phase.order, kind="gauge",
            help="Life-cycle phase ordinal (0=inactive .. 4=converged)",
            column=column_name,
        )
        registry.register_pull(
            "index.memory.bytes", index, lambda i: i.memory_footprint(),
            kind="gauge", help="Index structure footprint",
            column=column_name,
        )

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The session's table."""
        return self._table

    def indexes(self) -> Dict[str, BaseIndex]:
        """The indexes created so far, keyed by column name."""
        return dict(self._indexes)

    def index_for(self, column_name: str) -> BaseIndex:
        """The index on ``column_name`` (raises if none was created)."""
        try:
            return self._indexes[column_name]
        except KeyError:
            raise IndexStateError(
                f"no index was created on column {column_name!r}; "
                "call create_index() first"
            ) from None

    def live_index_for(self, column_name: str) -> Optional[BaseIndex]:
        """The index on ``column_name`` iff it tracks the live column.

        The concurrent serving layer (:mod:`repro.engine.shared`) answers
        pinned-version reads through the index only when the index's delta
        overlay follows this table's live column — an index pinned to a
        detached frozen snapshot cannot be version-corrected and is ignored
        in favour of a direct snapshot scan.  Returns ``None`` when the
        column is unindexed or its index is detached.
        """
        index = self._indexes.get(column_name)
        if index is None:
            return None
        if getattr(index, "live_column", None) is not self._table.column(column_name):
            return None
        return index

    # ------------------------------------------------------------------
    def create_index(
        self,
        column_name: str,
        method: Optional[str] = None,
        budget: Optional[BudgetPolicy] = None,
        budget_fraction: Optional[float] = None,
        fixed_delta: Optional[float] = None,
        interactivity_budget: Optional[float] = None,
        point_query_workload: bool = False,
        skewed_data: bool = False,
        **kwargs,
    ) -> BaseIndex:
        """Create a progressive index on ``column_name``.

        Parameters
        ----------
        column_name:
            Which column of the table to index.
        method:
            Algorithm acronym (``"PQ"``, ``"PMSD"``, ``"PLSD"``, ``"PB"``, or
            a baseline).  When omitted the Figure 11 decision tree picks one
            based on ``point_query_workload`` and ``skewed_data``.
        budget:
            Explicit budget policy; overrides the convenience parameters.
        budget_fraction:
            Time-adaptive indexing budget as a fraction of the scan cost
            (the paper's default experiments use ``0.2``).
        fixed_delta:
            Fixed fraction of the column indexed per query.
        interactivity_budget:
            Interactivity threshold τ in seconds: every query should take
            about this long in total until the index converges.  Installs
            the cost-model-greedy policy, which solves the per-phase cost
            model for the delta that lands each query on τ.
        kwargs:
            Extra keyword arguments forwarded to the index constructor.
        """
        if column_name in self._indexes:
            raise ExperimentError(f"column {column_name!r} is already indexed")
        column = self._table.column(column_name)
        if column.delta is not None:
            foreign = column.delta.foreign_handles(self)
            if foreign:
                raise PendingDeltaError(
                    f"column {column_name!r} has pending uncommitted deltas from "
                    f"{len(foreign)} other write handle(s); the writing session "
                    "must call commit_writes() before another handle may index "
                    "this column"
                )
        budget = self._resolve_budget(
            budget, budget_fraction, fixed_delta, interactivity_budget
        )
        if method is None:
            recommendation = recommend_index(
                point_query_workload=point_query_workload, skewed_data=skewed_data
            )
            index = recommendation.create(
                column, budget=budget, constants=self._constants, **kwargs
            )
        else:
            index = create_index(
                method, column, budget=budget, constants=self._constants, **kwargs
            )
        self._indexes[column_name] = index
        self._register_index_obs(column_name, index)
        return index

    @staticmethod
    def _resolve_budget(
        budget: Optional[BudgetPolicy],
        budget_fraction: Optional[float],
        fixed_delta: Optional[float],
        interactivity_budget: Optional[float],
    ) -> BudgetPolicy:
        """Collapse the convenience budget parameters into one policy."""
        provided = [
            value
            for value in (budget, budget_fraction, fixed_delta, interactivity_budget)
            if value is not None
        ]
        if len(provided) > 1:
            raise ExperimentError(
                "provide at most one of budget, budget_fraction, fixed_delta "
                "or interactivity_budget"
            )
        if budget is not None:
            return budget
        if fixed_delta is not None:
            return FixedDelta(fixed_delta)
        if interactivity_budget is not None:
            return CostModelGreedy(interactivity_budget=interactivity_budget)
        return TimeAdaptive(scan_fraction=budget_fraction or 0.2)

    def create_sharded_index(
        self,
        column_name: str,
        method: Optional[str] = None,
        shards: int = 4,
        parallel: bool = False,
        workers: Optional[int] = None,
        kind: str = "range",
        budget: Optional[BudgetPolicy] = None,
        budget_fraction: Optional[float] = None,
        fixed_delta: Optional[float] = None,
        interactivity_budget: Optional[float] = None,
        point_query_workload: bool = False,
        skewed_data: bool = False,
        router_bins: bool = False,
        spill_dir: Optional[str] = None,
        **kwargs,
    ):
        """Create a sharded (optionally multi-process parallel) index.

        Converts **every** column of the table to a
        :class:`~repro.shard.column.ShardedColumn` under one shared layout
        (rows stay aligned across columns, so ``where()`` conjunctions keep
        composing), then fronts ``column_name``'s K per-shard progressive
        indexes with a zone-map router and a pooled interactivity budget.

        Parameters mirror :meth:`create_index` plus:

        shards:
            Partition count K.  A table already sharded by a previous call
            reuses its layout (``shards`` must then agree).
        parallel / workers:
            Run per-shard work on a persistent worker-process pool (shard
            bases shared zero-copy; ``workers`` defaults to the CPU count).
        kind:
            ``"range"`` partitioning (zone-map routable — the default) or
            ``"hash"``.
        router_bins:
            Add per-shard bin-occupancy bitmaps for extra pruning (useful
            for hash layouts).
        spill_dir:
            Back the shared shard bases with mmap'd column files in this
            directory instead of anonymous shared memory.
        """
        from repro.shard import ShardedColumn, ShardedIndex, shard_table
        from repro.shard.index import build_sharded_index

        if column_name in self._indexes:
            raise ExperimentError(f"column {column_name!r} is already indexed")
        stale = [
            name
            for name, index in self._indexes.items()
            if not isinstance(index, ShardedIndex)
        ]
        if stale:
            raise ExperimentError(
                f"cannot shard the table while unsharded indexes exist on "
                f"{sorted(stale)}: sharding permutes the row-id space those "
                "indexes answer over; drop them first"
            )
        column = self._table.column(column_name)
        if isinstance(column, ShardedColumn):
            if int(shards) != column.n_shards:
                raise ExperimentError(
                    f"table is already sharded into {column.n_shards} "
                    f"partitions; requested {shards} — sibling columns must "
                    "share one layout"
                )
        else:
            shard_table(self._table, column_name, int(shards), kind=kind)
            column = self._table.column(column_name)
            # Any cached batched-scan handle saw the pre-shard row order.
            self._scan_handles.clear()
        budget = self._resolve_budget(
            budget, budget_fraction, fixed_delta, interactivity_budget
        )
        if method is None:
            method = recommend_index(
                point_query_workload=point_query_workload, skewed_data=skewed_data
            ).acronym
        index = build_sharded_index(
            column,
            method,
            parallel=parallel,
            workers=workers,
            budget=budget,
            constants=self._constants,
            router_bins=router_bins,
            spill_dir=spill_dir,
            **kwargs,
        )
        self._indexes[column_name] = index
        self._register_index_obs(column_name, index)
        return index

    def drop_index(self, column_name: str) -> None:
        """Remove the index on ``column_name`` (no error if absent).

        Sharded indexes shut down their worker pool on the way out.
        """
        index = self._indexes.pop(column_name, None)
        close = getattr(index, "close", None)
        if close is not None:
            close()

    def attach_index(self, column_name: str, index: BaseIndex) -> BaseIndex:
        """Register an externally constructed index for ``column_name``.

        The recovery path of :class:`~repro.persist.database.Database` uses
        this to install indexes restored from a checkpoint; the index must
        answer for the named column of this session's table.
        """
        if column_name not in self._table:
            raise ExperimentError(
                f"cannot attach an index for unknown column {column_name!r}; "
                f"available: {sorted(self._table.column_names)}"
            )
        if column_name in self._indexes:
            raise ExperimentError(f"column {column_name!r} is already indexed")
        if not isinstance(index, BaseIndex):
            raise ExperimentError(
                f"attach_index() expects a BaseIndex, got {type(index).__name__}"
            )
        self._indexes[column_name] = index
        self._register_index_obs(column_name, index)
        return index

    # ------------------------------------------------------------------
    # Writes (delta-store; indexes absorb them via budget-priced merging)
    # ------------------------------------------------------------------
    def insert(self, values, column_name: Optional[str] = None) -> np.ndarray:
        """Insert rows; returns the stable row ids of the new rows.

        Two forms are accepted:

        * a mapping ``{"col": values, ...}`` covering **every** column of
          the table (full rows — the only alignment-safe form for
          multi-column tables);
        * a bare value or sequence, targeting ``column_name`` (defaults to
          the table's only column).

        The rows land in the column delta stores immediately — every
        subsequent query sees them — and existing indexes absorb them
        progressively under their budget policies (the ``MERGE`` phase)
        instead of being rebuilt.
        """
        if isinstance(values, Mapping):
            return self._table.insert_rows(values, handle=self)
        target = column_name or self._single_column_for_write("insert")
        self._table.column(target)  # raises UnknownColumnError when absent
        return self._table.insert_rows({target: values}, handle=self)

    def delete(self, column_name: str, low, high=None) -> int:
        """Delete every row whose ``column_name`` value lies in ``[low, high]``.

        ``high`` defaults to ``low`` (point delete).  Returns the number of
        rows deleted.  The deletion applies to the whole row: every column
        of the table tombstones the same stable rids, keeping multi-column
        conjunctions consistent.
        """
        if high is None:
            high = low
        return self._table.delete_where(column_name, low, high, handle=self)

    def update(self, column_name: str, low, high, value) -> int:
        """Set ``column_name`` to ``value`` for every row in ``[low, high]``.

        Implemented as delete + insert (the classic column-store write
        path): the matching rows are tombstoned and re-inserted with the
        target column substituted, all other column values preserved.
        Returns the number of rows updated.
        """
        return self._table.update_where(column_name, low, high, value, handle=self)

    def commit_writes(self) -> None:
        """Mark this session's pending writes committed.

        Other sessions may not ``create_index`` on a column while this
        session has uncommitted deltas on it
        (:class:`~repro.errors.PendingDeltaError`).
        """
        for name in self._table.column_names:
            delta = self._table.column(name).delta
            if delta is not None:
                delta.commit(self)

    def execute_operations(
        self, workload: Workload, column_name: Optional[str] = None
    ) -> List[Optional[QueryResult]]:
        """Replay a (possibly mixed read/write) workload in order.

        Reads go through :meth:`between` (advancing index construction and
        delta merging within the budget); writes go through
        :meth:`insert`/:meth:`delete`/:meth:`update`.  Returns one entry per
        operation: a :class:`~repro.core.query.QueryResult` for reads,
        ``None`` for writes.
        """
        target = column_name or self._default_column()
        operations = workload.operations
        if operations is None:
            operations = list(workload.predicates)
        results: List[Optional[QueryResult]] = []
        for operation in operations:
            if isinstance(operation, Predicate):
                results.append(self.between(target, operation.low, operation.high))
            else:
                operation.apply(self, target)
                results.append(None)
        return results

    def _single_column_for_write(self, operation: str) -> str:
        names = list(self._table.column_names)
        if len(names) == 1:
            return names[0]
        raise ExperimentError(
            f"{operation}() without a column mapping requires a single-column "
            f"table; this table has {len(names)} columns — pass a "
            "{column: values} mapping covering all of them"
        )

    # ------------------------------------------------------------------
    def between(self, column_name: str, low, high) -> QueryResult:
        """``SELECT SUM(col), COUNT(*) WHERE col BETWEEN low AND high``.

        Uses the column's index when one exists, otherwise a predicated full
        scan.  An inverted range (``low > high``) selects nothing: the empty
        result is returned directly, without advancing any index.
        """
        if low > high:
            return QueryResult.empty()
        predicate = Predicate(low, high)
        if column_name in self._indexes:
            return self._indexes[column_name].query(predicate)
        column = self._table.column(column_name)
        value_sum, count = column.scan_range(low, high)
        return QueryResult(value_sum, count)

    def equals(self, column_name: str, value) -> QueryResult:
        """Point-query variant of :meth:`between`."""
        return self.between(column_name, value, value)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        queries,
        column_name: Optional[str] = None,
        executor: Optional[BatchExecutor] = None,
    ) -> List[QueryResult]:
        """Answer a whole batch of range queries at once.

        The batch is grouped per column/index and handed to the
        :class:`~repro.engine.batch.BatchExecutor`: per-query progressive
        refinement is interleaved across the batch under one pooled
        :class:`~repro.core.budget.BatchBudget` (sized to what the same
        queries would have spent sequentially) and, as soon as an index can,
        the remainder of its group is answered with NumPy-vectorized piece
        lookups.  Answers are exact at every point, so the returned results
        are identical to issuing the same queries sequentially.

        Parameters
        ----------
        queries:
            One of: a :class:`~repro.workloads.workload.Workload`, a sequence
            of :class:`~repro.core.query.Predicate` objects or ``(low,
            high)`` pairs (all against ``column_name``), or a sequence of
            ``(column_name, predicate)`` pairs for a multi-column batch.
        column_name:
            Target column for the single-column input forms.  Defaults to
            the only column of the table (or the only indexed column).
        executor:
            Optional pre-configured :class:`~repro.engine.batch.BatchExecutor`.

        Returns
        -------
        list of :class:`~repro.core.query.QueryResult`
            One result per query, in submission order.  Inverted ranges
            (``low > high``) yield empty results, matching :meth:`between`.
        """
        hist = self._obs_batch_seconds
        tracer = obs.tracer()
        if hist or tracer.enabled:
            batch_started = perf_counter()
        executor = executor or BatchExecutor()
        pairs = self._normalize_batch(queries, column_name)
        span = tracer.start("session.batch", {"queries": len(pairs)}) if tracer.enabled else None
        try:
            # Inverted ranges select nothing; answer them directly (the same
            # leniency as between()) and hand only valid predicates downstream.
            valid = [(number, pair) for number, pair in enumerate(pairs) if pair[1] is not None]
            results: List[QueryResult] = [QueryResult.empty() for _ in pairs]
            if valid:
                valid_pairs = [pair for _, pair in valid]
                columns = {name: self._table.column(name) for name, _ in valid_pairs}
                indexes = {name: self._batch_handle(name, column) for name, column in columns.items()}
                answers = executor.execute_grouped(indexes, valid_pairs, columns)
                for (number, _), answer in zip(valid, answers):
                    results[number] = answer
        finally:
            if span is not None:
                span.end()
        if hist:
            hist.observe(perf_counter() - batch_started)
            self._obs_batch_queries.inc(len(pairs))
        return results

    def _batch_handle(self, column_name: str, column: Column) -> BaseIndex:
        """The index answering batches on ``column_name``.

        Indexed columns use their index; unindexed columns get a cached
        :class:`~repro.baselines.full_scan.FullScan` handle so repeated
        batches amortize the batched-scan preparation.
        """
        index = self._indexes.get(column_name)
        if index is not None:
            return index
        handle = self._scan_handles.get(column_name)
        if handle is None:
            handle = FullScan(column, constants=self._constants)
            self._scan_handles[column_name] = handle
        return handle

    def _normalize_batch(self, queries, column_name: Optional[str]):
        """Coerce any accepted batch form into ``(column, Predicate)`` pairs.

        Inverted ``(low, high)`` pairs map to ``(column, None)`` — a
        provably empty query answered without touching any index.
        """
        if isinstance(queries, Workload):
            target = column_name or self._default_column()
            return [(target, predicate) for predicate in queries]
        items = list(queries)
        if not items:
            return []
        first = items[0]
        if isinstance(first, tuple) and len(first) == 2 and isinstance(first[0], str):
            pairs = []
            for name, predicate in items:
                if name not in self._table:
                    raise ExperimentError(
                        f"batch references unknown column {name!r}; "
                        f"available: {sorted(self._table.column_names)}"
                    )
                pairs.append((name, self._coerce_predicate(predicate)))
            return pairs
        target = column_name or self._default_column()
        return [(target, self._coerce_predicate(item)) for item in items]

    @staticmethod
    def _coerce_predicate(predicate) -> Optional[Predicate]:
        if isinstance(predicate, Predicate):
            return predicate
        low, high = predicate
        if low > high:
            return None
        return Predicate(low, high)

    def _default_column(self) -> str:
        names = list(self._table.column_names)
        if len(names) == 1:
            return names[0]
        if len(self._indexes) == 1:
            return next(iter(self._indexes))
        raise ExperimentError(
            "the batch does not name a column and the table has "
            f"{len(names)} columns; pass column_name= or submit "
            "(column_name, predicate) pairs"
        )

    # ------------------------------------------------------------------
    # Multi-column conjunctions
    # ------------------------------------------------------------------
    def where(self, predicates: Mapping[str, Sequence]) -> ConjunctionResult:
        """Answer a multi-column conjunctive range predicate.

        ``session.where({"ra": (lo, hi), "dec": (lo, hi)})`` answers::

            SELECT COUNT(*), SUM(ra), SUM(dec)
            WHERE ra BETWEEN lo AND hi AND dec BETWEEN lo AND hi

        The planner picks the indexed column with the lowest estimated
        selectivity as the *driving* column: its (progressive) index answers
        the single-column predicate first — transparently advancing index
        construction within the budget — and short-circuits the conjunction
        when nothing matches.  A single-column conjunction is answered by
        the driving index alone (equivalent to :meth:`between`); for
        multi-column conjunctions the row-level intersection is then
        computed with vectorized NumPy masks over the base data of every
        referenced column (the indexes store values, not row identifiers,
        so the driving index contributes planning, construction progress and
        the empty-result short-circuit rather than the row set itself).

        Parameters
        ----------
        predicates:
            Mapping from column name to an inclusive ``(low, high)`` pair.
            An inverted range (``low > high``) selects nothing.

        Returns
        -------
        :class:`~repro.core.query.ConjunctionResult`
            Matching-row count plus the per-column sums over matching rows.
        """
        if not predicates:
            raise ExperimentError("where() requires at least one column predicate")
        hist = self._obs_where_seconds
        tracer = obs.tracer()
        if hist or tracer.enabled:
            started = perf_counter()
        if tracer.enabled:
            with tracer.span("session.where", columns=sorted(predicates)) as span:
                result = self._where_impl(predicates)
                span.set(count=int(result.count), driving=result.driving_column)
        else:
            result = self._where_impl(predicates)
        if hist:
            hist.observe(perf_counter() - started)
        return result

    def _where_impl(self, predicates: Mapping[str, Sequence]) -> ConjunctionResult:
        bounds: Dict[str, tuple] = {}
        for column_name, pair in predicates.items():
            column = self._table.column(column_name)  # validates the name
            low, high = pair
            if low > high:
                return ConjunctionResult.empty(predicates.keys())
            bounds[column_name] = (low, high, column)

        driving = self._plan_driving_column(bounds)
        if len(bounds) == 1:
            # Single-column conjunction: the index answer IS the result — no
            # row-level mask needed.
            ((column_name, (low, high, _)),) = bounds.items()
            single = self.between(column_name, low, high)
            return ConjunctionResult(
                single.count, {column_name: single.value_sum}, driving
            )
        if driving is not None:
            low, high, _ = bounds[driving]
            driven = self._indexes[driving].query(Predicate(low, high))
            if driven.count == 0:
                return ConjunctionResult.empty(predicates.keys(), driving)

        mask: Optional[np.ndarray] = None
        order = [driving] if driving is not None else []
        order += [name for name in bounds if name != driving]
        for column_name in order:
            low, high, column = bounds[column_name]
            column_mask = (column.data >= low) & (column.data <= high)
            mask = column_mask if mask is None else (mask & column_mask)
            if not mask.any():
                return ConjunctionResult.empty(predicates.keys(), driving)
        count = int(np.count_nonzero(mask))
        value_sums = {
            name: bounds[name][2].data[mask].sum() for name in bounds
        }
        return ConjunctionResult(count, value_sums, driving)

    def _plan_driving_column(self, bounds: Mapping[str, tuple]) -> Optional[str]:
        """The indexed column with the lowest estimated selectivity."""
        best_name = None
        best_selectivity = None
        for column_name, (low, high, column) in bounds.items():
            if column_name not in self._indexes:
                continue
            selectivity = Predicate(low, high).selectivity(
                float(column.min()), float(column.max())
            )
            if best_selectivity is None or selectivity < best_selectivity:
                best_name = column_name
                best_selectivity = selectivity
        return best_name

    def memory_status(self) -> Optional[dict]:
        """The active memory budget's derived allowances and live counters.

        ``None`` when the session runs without a budget (the in-memory
        engine).  With one, reports the total allowance, the per-component
        caps, and — once the components exist — scratch-spill and
        block-cache hit/miss/eviction counters (JSON-serializable).
        """
        if self.memory_budget is None:
            return None
        return _json_safe(self.memory_budget.stats())

    def status(self) -> Dict[str, dict]:
        """Per-index construction and write/merge status.

        ``phase_stats`` summarises every visited life-cycle phase: how many
        queries it answered and how much indexing budget (model seconds) was
        spent in it, as accounted by the shared
        :class:`~repro.core.phase.IndexLifecycle` driver.  ``writes``
        reports the mutable-substrate counters of the column and the
        index's delta overlay (pending / absorbed / folded rows, merge
        budget spent).

        The returned structure is fully JSON-serializable — NumPy scalars
        are coerced to native Python types — so external monitors can ship
        it as-is (``json.dumps(session.status())``).
        """
        report = {}
        for column_name, index in self._indexes.items():
            column = self._table.column(column_name)
            entry = {
                "algorithm": index.name,
                "phase": index.phase.value,
                "queries_executed": index.queries_executed,
                "converged": index.converged,
                "memory_bytes": index.memory_footprint(),
                "budget": index.budget.describe(),
                "phase_stats": index.lifecycle.snapshot(),
                "writes": index.overlay_stats(),
            }
            delta = column.delta
            if delta is not None:
                entry["writes"].update(
                    {
                        "column_inserts": delta.n_inserts,
                        "column_deletes": delta.n_deletes,
                        "visible_rows": len(column),
                        "delta_bytes": delta.memory_footprint(),
                    }
                )
            shard_status = getattr(index, "shard_status", None)
            if shard_status is not None:
                entry["sharding"] = shard_status()
            report[column_name] = entry
        budget = self.memory_budget
        if budget is None:
            # Columns opened with their own budget (Column.from_file) and
            # never attached to a session-level one still get surfaced.
            for column_name in self._table.column_names:
                budget = getattr(
                    self._table.column(column_name), "memory_budget", None
                )
                if budget is not None:
                    break
        if budget is not None:
            # Out-of-core sessions surface the BlockCache hit/miss/eviction
            # and scratch-spill counters alongside the per-index entries.
            # "memory" is a reserved key (a column of that name would have
            # its entry replaced here; none of the engine's callers do).
            report["memory"] = budget.stats()
        return _json_safe(report)
