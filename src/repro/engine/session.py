"""High-level user-facing API: index a table column and query it.

:class:`IndexingSession` is the entry point a downstream user of the library
interacts with: register a table, create a (progressive) index on one of its
columns — either by naming an algorithm or by letting the Figure 11 decision
tree choose — and run range / point queries.  Every query transparently
advances the index construction within the configured budget.

Example
-------
>>> import numpy as np
>>> from repro import IndexingSession, Table
>>> table = Table({"ra": np.random.default_rng(0).integers(0, 1000, 10_000)})
>>> session = IndexingSession(table)
>>> session.create_index("ra", method="PQ", budget_fraction=0.2)
>>> result = session.between("ra", 100, 200)
>>> result.count > 0
True
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.budget import AdaptiveBudget, FixedBudget, IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.query import Predicate, QueryResult
from repro.engine.decision_tree import recommend_index
from repro.engine.registry import create_index
from repro.errors import ExperimentError, IndexStateError
from repro.storage.column import Column
from repro.storage.table import Table


class IndexingSession:
    """Manages progressive indexes over the columns of one table.

    Parameters
    ----------
    table:
        The table whose columns can be indexed.  A bare :class:`Column` (or
        NumPy array) is also accepted and wrapped into a single-column table.
    constants:
        Optional cost-model constants shared by all indexes created in this
        session (calibrate once, reuse everywhere).
    """

    def __init__(self, table, constants: CostConstants | None = None) -> None:
        if isinstance(table, Table):
            self._table = table
        elif isinstance(table, Column):
            self._table = Table({table.name: table})
        else:
            self._table = Table({"value": Column(table)})
        self._constants = constants
        self._indexes: Dict[str, BaseIndex] = {}

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The session's table."""
        return self._table

    def indexes(self) -> Dict[str, BaseIndex]:
        """The indexes created so far, keyed by column name."""
        return dict(self._indexes)

    def index_for(self, column_name: str) -> BaseIndex:
        """The index on ``column_name`` (raises if none was created)."""
        try:
            return self._indexes[column_name]
        except KeyError:
            raise IndexStateError(
                f"no index was created on column {column_name!r}; "
                "call create_index() first"
            ) from None

    # ------------------------------------------------------------------
    def create_index(
        self,
        column_name: str,
        method: Optional[str] = None,
        budget: Optional[IndexingBudget] = None,
        budget_fraction: Optional[float] = None,
        fixed_delta: Optional[float] = None,
        point_query_workload: bool = False,
        skewed_data: bool = False,
        **kwargs,
    ) -> BaseIndex:
        """Create a progressive index on ``column_name``.

        Parameters
        ----------
        column_name:
            Which column of the table to index.
        method:
            Algorithm acronym (``"PQ"``, ``"PMSD"``, ``"PLSD"``, ``"PB"``, or
            a baseline).  When omitted the Figure 11 decision tree picks one
            based on ``point_query_workload`` and ``skewed_data``.
        budget:
            Explicit budget controller; overrides the convenience parameters.
        budget_fraction:
            Adaptive indexing budget as a fraction of the scan cost (the
            paper's default experiments use ``0.2``).
        fixed_delta:
            Fixed fraction of the column indexed per query.
        kwargs:
            Extra keyword arguments forwarded to the index constructor.
        """
        if column_name in self._indexes:
            raise ExperimentError(f"column {column_name!r} is already indexed")
        column = self._table.column(column_name)
        if budget is None:
            if fixed_delta is not None:
                budget = FixedBudget(fixed_delta)
            else:
                budget = AdaptiveBudget(scan_fraction=budget_fraction or 0.2)
        if method is None:
            recommendation = recommend_index(
                point_query_workload=point_query_workload, skewed_data=skewed_data
            )
            index = recommendation.create(
                column, budget=budget, constants=self._constants, **kwargs
            )
        else:
            index = create_index(
                method, column, budget=budget, constants=self._constants, **kwargs
            )
        self._indexes[column_name] = index
        return index

    def drop_index(self, column_name: str) -> None:
        """Remove the index on ``column_name`` (no error if absent)."""
        self._indexes.pop(column_name, None)

    # ------------------------------------------------------------------
    def between(self, column_name: str, low, high) -> QueryResult:
        """``SELECT SUM(col), COUNT(*) WHERE col BETWEEN low AND high``.

        Uses the column's index when one exists, otherwise a predicated full
        scan.
        """
        predicate = Predicate(low, high)
        if column_name in self._indexes:
            return self._indexes[column_name].query(predicate)
        column = self._table.column(column_name)
        value_sum, count = column.scan_range(low, high)
        return QueryResult(value_sum, count)

    def equals(self, column_name: str, value) -> QueryResult:
        """Point-query variant of :meth:`between`."""
        return self.between(column_name, value, value)

    def status(self) -> Dict[str, dict]:
        """Per-index construction status (phase, queries, convergence)."""
        report = {}
        for column_name, index in self._indexes.items():
            report[column_name] = {
                "algorithm": index.name,
                "phase": index.phase.value,
                "queries_executed": index.queries_executed,
                "converged": index.converged,
                "memory_bytes": index.memory_footprint(),
            }
        return report
