"""Shared engine: one progressive-index session served to many clients.

:class:`~repro.engine.session.IndexingSession` is a single-client API — its
queries mutate index state freely and always answer at the column's *live*
version.  This module splits that into the pieces a concurrent service
needs:

:class:`SharedEngine`
    Owns the session (optionally the :class:`~repro.persist.database.Database`
    wrapping it for WAL-backed writes), the engine-wide **write gate** (an
    RW lock: writers append to the delta stores exclusively, all query
    execution holds it shared — so a query never observes a column version
    moving underneath it), the map of *committed* snapshot versions, and
    the :class:`~repro.serve.scheduler.ProgressiveScheduler` that serializes
    index mutation and admits per-class indexing budgets.

:class:`ReaderView`
    A per-client MVCC view pinned to the committed versions at creation (or
    last :meth:`~ReaderView.refresh`).  Reads are answered *exactly* at the
    pinned versions: structural answers — which track the live column or the
    index's fold watermark — are moved to the pinned version with a
    delta-store **window correction**: for aggregates, the answer at version
    ``V`` equals the answer at watermark ``W`` plus/minus the net
    (sum, count) of the writes in the seq window between them.  Uncommitted
    writer rows lie beyond every pinned version, so readers can never see
    them (no phantom deltas).

:class:`WriterHandle`
    The single writer.  Writes go through the engine's write gate
    exclusively (and through the WAL when the engine wraps a database);
    :meth:`~WriterHandle.commit` makes them durable and advances the
    committed versions new reader views pin.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.overlay import _predicated_delta
from repro.core.query import ConjunctionResult, Predicate, QueryResult, search_sorted_many
from repro.engine.session import IndexingSession
from repro.errors import ConcurrencyError
from repro.serve.sync import RWLock


# ----------------------------------------------------------------------
# Version-window corrections
# ----------------------------------------------------------------------
def version_correction(delta, low, high, answered_at: int, pinned: int):
    """Move an exact-at-``answered_at`` aggregate to version ``pinned``.

    Returns the :class:`~repro.core.query.QueryResult` correction to *add*
    (``None`` when nothing changes).  Works in both directions: when the
    answer is ahead of the pinned version (the usual case — the structure
    folded or queried newer writes), the net effect of the window
    ``(pinned, answered_at]`` is subtracted; when it is behind, the window
    ``(answered_at, pinned]`` is added.  Aggregate queries make equal
    values interchangeable, which is what makes the correction exact.
    """
    if delta is None or answered_at == pinned:
        return None
    if pinned > answered_at:
        sign, after, upto = 1, answered_at, pinned
    else:
        sign, after, upto = -1, pinned, answered_at
    inserts = delta.insert_window(after, upto)
    deletes = delta.delete_window(after, upto)
    ins_sum, ins_count = _predicated_delta(inserts, low, high)
    del_sum, del_count = _predicated_delta(deletes, low, high)
    count = sign * (ins_count - del_count)
    value_sum = sign * (ins_sum - del_sum)
    if count == 0 and value_sum == 0:
        return None
    return QueryResult(value_sum, count)


def version_correction_many(delta, lows, highs, answered_at: int, pinned: int, answered):
    """Batch form of :func:`version_correction`.

    ``answered`` is the ``(sums, counts)`` pair exact at ``answered_at``;
    returns corrected copies exact at ``pinned``.  The window values are
    sorted once and aggregated with the shared ``searchsorted`` + prefix-sum
    primitive, so the correction is vectorized across the whole batch.
    """
    sums, counts = answered
    if delta is None or answered_at == pinned:
        return np.array(sums), np.array(counts, dtype=np.int64)
    if pinned > answered_at:
        sign, after, upto = 1, answered_at, pinned
    else:
        sign, after, upto = -1, pinned, answered_at
    sums = np.array(sums)
    counts = np.array(counts, dtype=np.int64)
    inserts = np.sort(delta.insert_window(after, upto))
    deletes = np.sort(delta.delete_window(after, upto))
    if inserts.size:
        add_sums, add_counts, _ = search_sorted_many(inserts, lows, highs)
        sums += sign * add_sums
        counts += sign * add_counts
    if deletes.size:
        sub_sums, sub_counts, _ = search_sorted_many(deletes, lows, highs)
        sums -= sign * sub_sums
        counts -= sign * sub_counts
    return sums, counts


# ----------------------------------------------------------------------
class SharedEngine:
    """The concurrently shared core of a query service.

    Parameters
    ----------
    session:
        The :class:`~repro.engine.session.IndexingSession` to share.  A
        table / column / array is also accepted and wrapped.
    database:
        Optional :class:`~repro.persist.database.Database` owning the
        session; when given, writes and commits route through it (WAL-ahead)
        instead of the bare session.
    scheduler:
        Optional pre-configured
        :class:`~repro.serve.scheduler.ProgressiveScheduler`; one with the
        default connection classes is created otherwise.
    """

    def __init__(self, session, database=None, scheduler=None) -> None:
        if not isinstance(session, IndexingSession):
            session = IndexingSession(session)
        self._session = session
        self._database = database
        if scheduler is None:
            # Local import: repro.serve imports this module for its server
            # and views, so the dependency must stay one-way at import time.
            from repro.serve.scheduler import ProgressiveScheduler

            scheduler = ProgressiveScheduler()
        self.scheduler = scheduler
        #: Engine-wide write gate (see module docstring).
        self.gate = RWLock()
        self._writer_lock = threading.Lock()
        self._committed: Dict[str, int] = {
            name: session.table.column(name).version
            for name in session.table.column_names
        }

    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, database, scheduler=None) -> "SharedEngine":
        """Wrap an open :class:`~repro.persist.database.Database`."""
        return cls(database.session, database=database, scheduler=scheduler)

    @property
    def session(self) -> IndexingSession:
        """The underlying (single-client) session."""
        return self._session

    @property
    def database(self):
        """The database backing writes, or ``None`` for in-memory engines."""
        return self._database

    def committed_versions(self) -> Dict[str, int]:
        """Snapshot of the per-column committed versions."""
        with self.gate.read():
            return dict(self._committed)

    # ------------------------------------------------------------------
    def reader(self, connection_class: str = "interactive") -> "ReaderView":
        """A new MVCC reader view pinned at the current committed versions."""
        return ReaderView(self, connection_class)

    def acquire_writer(self) -> "WriterHandle":
        """Attach the single writer; raises if one is already active."""
        if not self._writer_lock.acquire(blocking=False):
            raise ConcurrencyError(
                "another writer is already attached; the serving layer is "
                "single-writer — release it (or wait for its disconnect) first"
            )
        return WriterHandle(self)

    def _release_writer(self) -> None:
        self._writer_lock.release()

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-safe engine status: per-index state plus scheduler counters."""
        with self.gate.read():
            report = {
                "committed_versions": dict(self._committed),
                "indexes": self._session.status(),
            }
        report["scheduler"] = self.scheduler.stats()
        return report


# ----------------------------------------------------------------------
class ReaderView:
    """A per-client read-only view pinned to committed snapshot versions."""

    def __init__(self, engine: SharedEngine, connection_class: str = "interactive") -> None:
        self._engine = engine
        self._class = engine.scheduler.class_named(connection_class)
        self._pinned: Dict[str, int] = {}
        self.refresh()

    # ------------------------------------------------------------------
    @property
    def connection_class(self):
        """The :class:`~repro.serve.connection.ConnectionClass` of this view."""
        return self._class

    def refresh(self) -> Dict[str, int]:
        """Re-pin at the current committed versions; returns them."""
        self._pinned = self._engine.committed_versions()
        return dict(self._pinned)

    def pinned_versions(self) -> Dict[str, int]:
        """The per-column versions this view is pinned to."""
        return dict(self._pinned)

    def snapshot_version(self, column_name: str) -> int:
        """The pinned version of ``column_name``."""
        return self._pinned.get(column_name, 0)

    # ------------------------------------------------------------------
    def between(self, column_name: str, low, high) -> QueryResult:
        """``SELECT SUM(col), COUNT(*) WHERE col BETWEEN low AND high``,
        exact at this view's pinned snapshot version."""
        if low > high:
            return QueryResult.empty()
        engine = self._engine
        session = engine.session
        column = session.table.column(column_name)
        pinned = self.snapshot_version(column_name)
        with engine.gate.read():
            index = session.live_index_for(column_name)
            if index is None:
                value_sum, count = column.snapshot(pinned).scan_range(low, high)
                return QueryResult(value_sum, count)
            scheduler = engine.scheduler
            bound = np.asarray([low]), np.asarray([high])
            structural = scheduler.read_structural(index, bound[0], bound[1])
            if structural is not None:
                (sums, counts), watermark = structural
                result = QueryResult(sums[0], int(counts[0]))
                correction = version_correction(
                    column.delta, low, high, watermark, pinned
                )
            else:
                live = column.version
                predicate = Predicate(low, high)
                result = scheduler.run_serialized(
                    index, self._class, column_name, lambda: index.query(predicate)
                )
                correction = version_correction(column.delta, low, high, live, pinned)
            return result if correction is None else result + correction

    def equals(self, column_name: str, value) -> QueryResult:
        """Point-query variant of :meth:`between`."""
        return self.between(column_name, value, value)

    # ------------------------------------------------------------------
    def search_many(self, column_name: str, lows, highs):
        """Answer a batch of ranges, every answer exact at the pinned version.

        Returns ``(sums, counts)`` arrays aligned with the input bounds.
        """
        lows = np.atleast_1d(np.asarray(lows))
        highs = np.atleast_1d(np.asarray(highs))
        engine = self._engine
        session = engine.session
        column = session.table.column(column_name)
        pinned = self.snapshot_version(column_name)
        with engine.gate.read():
            index = session.live_index_for(column_name)
            if index is None:
                return self._scan_batch(column, pinned, lows, highs)
            scheduler = engine.scheduler
            structural = scheduler.read_structural(index, lows, highs)
            if structural is not None:
                answered, watermark = structural
                return version_correction_many(
                    column.delta, lows, highs, watermark, pinned, answered
                )
            live = column.version

            def run():
                answered = index.search_many(lows, highs)
                if answered is not None:
                    return answered
                # Mid-construction family without vectorized answering yet:
                # drive it per query (construction advances under the lane).
                sums, counts = [], []
                for low, high in zip(lows, highs):
                    result = index.query(Predicate(low, high))
                    sums.append(result.value_sum)
                    counts.append(result.count)
                return np.asarray(sums), np.asarray(counts, dtype=np.int64)

            answered = scheduler.run_serialized(index, self._class, column_name, run)
            return version_correction_many(
                column.delta, lows, highs, live, pinned, answered
            )

    @staticmethod
    def _scan_batch(column, pinned: int, lows, highs):
        """Predicated snapshot scans for batches on unindexed columns."""
        snapshot = column.snapshot(pinned)
        sums, counts = [], []
        for low, high in zip(lows, highs):
            value_sum, count = snapshot.scan_range(low, high)
            sums.append(value_sum)
            counts.append(count)
        return np.asarray(sums), np.asarray(counts, dtype=np.int64)

    # ------------------------------------------------------------------
    def where(self, predicates: Mapping) -> ConjunctionResult:
        """Multi-column conjunction, exact at the pinned versions.

        Table writes are row-aligned across columns (every commit advances
        all column versions in lockstep), so the per-column snapshots at the
        pinned versions describe the same row set and vectorized masks over
        them intersect correctly.
        """
        if not predicates:
            raise ConcurrencyError("where() requires at least one column predicate")
        engine = self._engine
        session = engine.session
        with engine.gate.read():
            snapshots = {}
            for column_name, pair in predicates.items():
                column = session.table.column(column_name)  # validates the name
                low, high = pair
                if low > high:
                    return ConjunctionResult.empty(predicates.keys())
                snapshots[column_name] = (
                    low,
                    high,
                    column.snapshot(self.snapshot_version(column_name)),
                )
            mask: Optional[np.ndarray] = None
            for column_name, (low, high, snapshot) in snapshots.items():
                data = snapshot.data
                column_mask = (data >= low) & (data <= high)
                mask = column_mask if mask is None else (mask & column_mask)
                if not mask.any():
                    return ConjunctionResult.empty(predicates.keys())
            count = int(np.count_nonzero(mask))
            value_sums = {
                name: snapshots[name][2].data[mask].sum() for name in snapshots
            }
            return ConjunctionResult(count, value_sums, None)


# ----------------------------------------------------------------------
class WriterHandle:
    """The engine's single writer: delta-store appends plus commit.

    Obtained via :meth:`SharedEngine.acquire_writer`; :meth:`release` (or
    the server's connection teardown) frees the slot for the next writer.
    """

    def __init__(self, engine: SharedEngine) -> None:
        self._engine = engine
        self._active = True

    def _backend(self):
        engine = self._require_active()
        return engine.database if engine.database is not None else engine.session

    def _require_active(self) -> SharedEngine:
        if not self._active:
            raise ConcurrencyError("this writer handle has been released")
        return self._engine

    # ------------------------------------------------------------------
    def insert(self, values, column_name: Optional[str] = None) -> np.ndarray:
        """Insert rows (WAL-ahead when the engine wraps a database)."""
        engine = self._require_active()
        with engine.gate.write():
            return self._backend().insert(values, column_name)

    def delete(self, column_name: str, low, high=None) -> int:
        """Delete every row whose ``column_name`` value lies in ``[low, high]``."""
        engine = self._require_active()
        with engine.gate.write():
            return self._backend().delete(column_name, low, high)

    def update(self, column_name: str, low, high, value) -> int:
        """Set ``column_name`` to ``value`` for every row in ``[low, high]``."""
        engine = self._require_active()
        with engine.gate.write():
            return self._backend().update(column_name, low, high, value)

    def commit(self) -> Dict[str, int]:
        """Commit pending writes and advance the visible snapshot versions.

        Returns the new committed versions — what reader views pin on their
        next :meth:`~ReaderView.refresh`.
        """
        engine = self._require_active()
        with engine.gate.write():
            backend = self._backend()
            if engine.database is not None:
                backend.commit()
            else:
                backend.commit_writes()
            session = engine.session
            engine._committed = {
                name: session.table.column(name).version
                for name in session.table.column_names
            }
            return dict(engine._committed)

    def release(self) -> None:
        """Detach this writer, letting another connection take the slot."""
        if self._active:
            self._active = False
            self._engine._release_writer()
