"""Workload executor: drives an index through a workload and records timings.

The executor is the measurement harness shared by every experiment and
benchmark: it times each query, snapshots the per-query statistics the index
reports (phase, delta, cost-model prediction), optionally cross-checks every
answer against a reference full scan, and condenses the run into the paper's
metrics (:mod:`repro.engine.metrics`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.query import QueryResult
from repro.engine.metrics import WorkloadMetrics, compute_metrics, compute_phase_breakdown
from repro.errors import ExperimentError
from repro.workloads.workload import Workload


@dataclass
class QueryRecord:
    """Measurements for a single executed query.

    ``indexing_seconds`` is the indexing budget the query spent according to
    the cost model (the ``delta * t_work`` term of its prediction), used by
    the per-phase breakdown.
    """

    query_number: int
    elapsed_seconds: float
    predicted_seconds: Optional[float]
    phase: IndexPhase
    delta: float
    result_count: int
    result_sum: float
    converged: bool
    indexing_seconds: float = 0.0


@dataclass
class ExecutionResult:
    """The outcome of running one workload against one index."""

    index_name: str
    workload_name: str
    records: List[QueryRecord] = field(default_factory=list)
    scan_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        """Number of executed queries."""
        return len(self.records)

    def times(self) -> np.ndarray:
        """Per-query elapsed times in seconds."""
        return np.array([record.elapsed_seconds for record in self.records])

    def predicted_times(self) -> np.ndarray:
        """Per-query cost-model predictions (NaN where unavailable)."""
        return np.array(
            [
                record.predicted_seconds if record.predicted_seconds is not None else np.nan
                for record in self.records
            ]
        )

    def converged_flags(self) -> List[bool]:
        """Per-query convergence flags."""
        return [record.converged for record in self.records]

    def metrics(self) -> WorkloadMetrics:
        """The paper's summary metrics for this run."""
        return compute_metrics(self.times(), self.converged_flags(), self.scan_seconds)

    def phase_breakdown(self) -> dict:
        """Per-phase query counts, wall-clock time and budget spent."""
        return compute_phase_breakdown(self.records)

    def phase_transitions(self) -> List[tuple]:
        """``(query_number, phase)`` pairs where the index changed phase."""
        transitions = []
        previous = None
        for record in self.records:
            if record.phase is not previous:
                transitions.append((record.query_number, record.phase))
                previous = record.phase
        return transitions


class WorkloadExecutor:
    """Runs workloads against indexes and produces :class:`ExecutionResult`.

    Parameters
    ----------
    verify:
        When true, every query answer is cross-checked against a predicated
        scan of the base column; a mismatch raises
        :class:`~repro.errors.ExperimentError`.  Useful in tests, too slow
        for large benchmark runs.
    warmup_scans:
        Number of full scans executed (and timed) before the workload to
        obtain the scan baseline used by the pay-off metric.
    """

    def __init__(self, verify: bool = False, warmup_scans: int = 3) -> None:
        self.verify = bool(verify)
        self.warmup_scans = max(1, int(warmup_scans))

    # ------------------------------------------------------------------
    def measure_scan_time(self, index: BaseIndex, workload: Workload) -> float:
        """Median time of a predicated full scan answering the first query."""
        predicate = workload[0]
        column = index.column
        durations = []
        for _ in range(self.warmup_scans):
            start = time.perf_counter()
            column.scan_range(predicate.low, predicate.high)
            durations.append(time.perf_counter() - start)
        return float(np.median(durations))

    def run(self, index: BaseIndex, workload: Workload) -> ExecutionResult:
        """Execute ``workload`` against ``index`` and record every query."""
        result = ExecutionResult(
            index_name=index.name,
            workload_name=workload.name,
            scan_seconds=self.measure_scan_time(index, workload),
        )
        column = index.column
        for query_number, predicate in enumerate(workload, start=1):
            start = time.perf_counter()
            answer = index.query(predicate)
            elapsed = time.perf_counter() - start
            stats = index.last_stats
            result.records.append(
                QueryRecord(
                    query_number=query_number,
                    elapsed_seconds=elapsed,
                    predicted_seconds=stats.predicted_cost,
                    phase=stats.phase,
                    delta=stats.delta,
                    result_count=answer.count,
                    result_sum=float(answer.value_sum),
                    converged=index.converged,
                    indexing_seconds=stats.indexing_seconds,
                )
            )
            if self.verify:
                self._verify(answer, column, predicate, index, query_number)
        return result

    @staticmethod
    def _verify(answer: QueryResult, column, predicate, index: BaseIndex, query_number: int) -> None:
        expected_sum, expected_count = column.scan_range(predicate.low, predicate.high)
        reference = QueryResult(expected_sum, expected_count)
        if not reference.approximately_equals(answer):
            raise ExperimentError(
                f"{index.name} returned an incorrect answer for query {query_number}: "
                f"got (sum={answer.value_sum}, count={answer.count}), "
                f"expected (sum={reference.value_sum}, count={reference.count})"
            )
