"""Evaluation metrics of Section 4 of the paper.

Given the per-query execution times of a workload, the paper reports:

* **First query cost** — the time of the very first query (which includes
  whatever upfront work the algorithm performs).
* **Pay-off** — the query number ``q`` at which the cumulative cost of the
  indexing method drops below the cumulative cost of always scanning
  (``sum_q t_method <= sum_q t_scan``).
* **Convergence** — the query number at which the index is fully built
  (``None`` / "x" for methods without deterministic convergence).
* **Robustness** — the variance of the first 100 query times (lower is more
  robust).
* **Cumulative time** — total time of the entire workload.

Beyond the paper's summary metrics, :func:`compute_phase_breakdown` splits a
run along the index's life-cycle phases — how many queries each phase
answered, how much wall-clock time they took, and how much indexing budget
was spent per phase — which is what the adaptive-policy experiments and the
session's ``status()`` report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.phase import IndexPhase

#: Number of leading queries whose variance defines the robustness score.
ROBUSTNESS_WINDOW = 100


@dataclass
class WorkloadMetrics:
    """Summary metrics of one workload execution."""

    first_query_seconds: float
    cumulative_seconds: float
    robustness_variance: float
    payoff_query: Optional[int]
    convergence_query: Optional[int]
    n_queries: int

    def as_row(self) -> dict:
        """Dictionary representation used by the report writers."""
        return {
            "first_query": self.first_query_seconds,
            "convergence": self.convergence_query if self.convergence_query else "x",
            "robustness": self.robustness_variance,
            "cumulative": self.cumulative_seconds,
            "payoff": self.payoff_query if self.payoff_query else "x",
            "queries": self.n_queries,
        }


def first_query_cost(times: Sequence[float]) -> float:
    """Time of the first query."""
    return float(times[0]) if len(times) else 0.0


def cumulative_cost(times: Sequence[float]) -> float:
    """Total time of the workload."""
    return float(np.sum(times)) if len(times) else 0.0


def robustness(times: Sequence[float], window: int = ROBUSTNESS_WINDOW) -> float:
    """Variance of the first ``window`` query times (the paper's robustness)."""
    if not len(times):
        return 0.0
    head = np.asarray(times[:window], dtype=float)
    return float(np.var(head))


def payoff_query(times: Sequence[float], scan_time: float) -> Optional[int]:
    """First query number where cumulative cost <= cumulative scan cost.

    ``scan_time`` is the cost of answering one query with a full scan.
    Returns ``None`` if the method never pays off within the workload.
    """
    if scan_time <= 0 or not len(times):
        return None
    cumulative = np.cumsum(np.asarray(times, dtype=float))
    scan_cumulative = scan_time * np.arange(1, len(cumulative) + 1)
    winners = np.nonzero(cumulative <= scan_cumulative)[0]
    if winners.size == 0:
        return None
    return int(winners[0]) + 1


def convergence_query(converged_flags: Sequence[bool]) -> Optional[int]:
    """First query number after which the index reports convergence."""
    for query_number, converged in enumerate(converged_flags, start=1):
        if converged:
            return query_number
    return None


@dataclass
class PhaseStats:
    """Per-phase slice of one workload execution.

    Attributes
    ----------
    phase:
        The life-cycle phase this row summarises.
    queries:
        Number of queries answered while the index was in this phase.
    elapsed_seconds:
        Total measured wall-clock time of those queries.
    indexing_seconds:
        Indexing budget spent during this phase (the sum of the per-query
        ``delta * t_work`` cost-model terms, in model seconds).
    """

    phase: IndexPhase
    queries: int = 0
    elapsed_seconds: float = 0.0
    indexing_seconds: float = 0.0

    def as_row(self) -> dict:
        """Dictionary representation used by the report writers."""
        return {
            "phase": self.phase.value,
            "queries": self.queries,
            "elapsed_s": self.elapsed_seconds,
            "indexing_s": self.indexing_seconds,
        }


def compute_phase_breakdown(records: Sequence) -> Dict[IndexPhase, PhaseStats]:
    """Aggregate executor records into per-phase statistics.

    ``records`` are :class:`~repro.engine.executor.QueryRecord` objects (or
    anything exposing ``phase``, ``elapsed_seconds`` and
    ``indexing_seconds``).  Phases are returned in life-cycle order and only
    when they answered at least one query.
    """
    breakdown: Dict[IndexPhase, PhaseStats] = {}
    for record in records:
        stats = breakdown.get(record.phase)
        if stats is None:
            stats = breakdown[record.phase] = PhaseStats(phase=record.phase)
        stats.queries += 1
        stats.elapsed_seconds += float(record.elapsed_seconds)
        stats.indexing_seconds += float(getattr(record, "indexing_seconds", 0.0) or 0.0)
    return dict(sorted(breakdown.items(), key=lambda item: item[0].order))


@dataclass
class BatchMetrics:
    """Throughput comparison of batch execution against a sequential loop.

    Attributes
    ----------
    n_queries:
        Number of queries in the workload.
    sequential_seconds, batch_seconds:
        Wall-clock time of the per-query loop and of the batch execution.
    driven_queries, vectorized_queries:
        How the batch split between per-query progressive driving and the
        vectorized ``search_many`` tail.
    """

    n_queries: int
    sequential_seconds: float
    batch_seconds: float
    driven_queries: int = 0
    vectorized_queries: int = 0

    @property
    def sequential_throughput(self) -> float:
        """Sequential queries per second."""
        return throughput(self.n_queries, self.sequential_seconds)

    @property
    def batch_throughput(self) -> float:
        """Batched queries per second."""
        return throughput(self.n_queries, self.batch_seconds)

    @property
    def speedup(self) -> float:
        """How many times faster the batch execution ran."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.batch_seconds

    def as_row(self) -> dict:
        """Dictionary representation used by the benchmark report."""
        return {
            "queries": self.n_queries,
            "sequential_s": self.sequential_seconds,
            "batch_s": self.batch_seconds,
            "sequential_qps": self.sequential_throughput,
            "batch_qps": self.batch_throughput,
            "speedup": self.speedup,
            "driven": self.driven_queries,
            "vectorized": self.vectorized_queries,
        }


def throughput(n_queries: int, elapsed_seconds: float) -> float:
    """Queries per second (``inf`` for a zero-length timing)."""
    if elapsed_seconds <= 0:
        return float("inf")
    return n_queries / elapsed_seconds


def compute_metrics(
    times: Sequence[float],
    converged_flags: Sequence[bool],
    scan_time: float,
    robustness_window: int = ROBUSTNESS_WINDOW,
) -> WorkloadMetrics:
    """Compute the full metric set for one workload execution."""
    return WorkloadMetrics(
        first_query_seconds=first_query_cost(times),
        cumulative_seconds=cumulative_cost(times),
        robustness_variance=robustness(times, window=robustness_window),
        payoff_query=payoff_query(times, scan_time),
        convergence_query=convergence_query(converged_flags),
        n_queries=len(times),
    )
