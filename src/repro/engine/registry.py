"""Registry mapping the paper's algorithm acronyms to index classes.

The experiment drivers, the benchmarks and the session API all refer to the
algorithms by the short names used in the paper's tables (``PQ``, ``PMSD``,
``PLSD``, ``PB``, ``STD``, ``STC``, ``PSTC``, ``CGI``, ``AA``, ``FS``,
``FI``).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.baselines.full_index import FullIndex
from repro.baselines.full_scan import FullScan
from repro.core.calibration import CostConstants
from repro.core.policy import BudgetPolicy, CostModelGreedy
from repro.core.index import BaseIndex
from repro.cracking.adaptive_adaptive import AdaptiveAdaptiveIndexing
from repro.cracking.coarse_granular import CoarseGranularIndex
from repro.cracking.progressive_stochastic import ProgressiveStochasticCracking
from repro.cracking.standard import StandardCracking
from repro.cracking.stochastic import StochasticCracking
from repro.errors import ExperimentError
from repro.progressive.bucketsort import ProgressiveBucketsort
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.progressive.radixsort_lsd import ProgressiveRadixsortLSD
from repro.progressive.radixsort_msd import ProgressiveRadixsortMSD
from repro.storage.column import Column

#: The paper's four progressive indexing techniques.
PROGRESSIVE_ALGORITHMS: Dict[str, Type[BaseIndex]] = {
    "PQ": ProgressiveQuicksort,
    "PMSD": ProgressiveRadixsortMSD,
    "PLSD": ProgressiveRadixsortLSD,
    "PB": ProgressiveBucketsort,
}

#: The adaptive-indexing (cracking) comparators.
ADAPTIVE_ALGORITHMS: Dict[str, Type[BaseIndex]] = {
    "STD": StandardCracking,
    "STC": StochasticCracking,
    "PSTC": ProgressiveStochasticCracking,
    "CGI": CoarseGranularIndex,
    "AA": AdaptiveAdaptiveIndexing,
}

#: The non-adaptive baselines.
BASELINE_ALGORITHMS: Dict[str, Type[BaseIndex]] = {
    "FS": FullScan,
    "FI": FullIndex,
}

#: Every algorithm of the evaluation, keyed by its paper acronym.
ALGORITHMS: Dict[str, Type[BaseIndex]] = {
    **BASELINE_ALGORITHMS,
    **ADAPTIVE_ALGORITHMS,
    **PROGRESSIVE_ALGORITHMS,
}


def create_index(
    name: str,
    column: Column,
    budget: BudgetPolicy | None = None,
    constants: CostConstants | None = None,
    interactivity_budget: float | None = None,
    **kwargs,
) -> BaseIndex:
    """Instantiate an algorithm by its paper acronym.

    Parameters
    ----------
    name:
        One of the keys of :data:`ALGORITHMS` (case-insensitive).
    column:
        Column to index.
    budget, constants:
        Forwarded to the index constructor.
    interactivity_budget:
        Convenience for the cost-model-greedy policy: the per-query total
        time target τ in seconds.  Mutually exclusive with ``budget``.
    kwargs:
        Additional algorithm-specific keyword arguments.
    """
    key = name.upper()
    if key not in ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    if interactivity_budget is not None:
        if budget is not None:
            raise ExperimentError(
                "provide at most one of budget or interactivity_budget"
            )
        budget = CostModelGreedy(interactivity_budget=interactivity_budget)
    index_class = ALGORITHMS[key]
    return index_class(column, budget=budget, constants=constants, **kwargs)


def create_sharded_index(
    column,
    algorithm: str,
    shards: int = 4,
    parallel: bool = False,
    **kwargs,
):
    """Build a sharded parallel index over ``column``.

    Partitions the column into ``shards`` range (default) or hash
    partitions, each served by its own instance of ``algorithm`` with an
    independent lifecycle, fronted by a zone-map router and a pooled
    interactivity budget.  With ``parallel=True`` the per-shard work runs
    on a persistent worker-process pool sharing the base arrays zero-copy.
    See :func:`repro.shard.index.build_sharded_index` for all options.
    """
    if algorithm.upper() not in ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        )
    from repro.shard.index import build_sharded_index

    return build_sharded_index(
        column, algorithm, shards=shards, parallel=parallel, **kwargs
    )
