"""Linked lists of fixed-size blocks backing the bucket-based algorithms.

Section 3.2 of the paper: "To avoid having to allocate large regions of
sequential data for every bucket, the buckets are implemented as a linked
list of blocks of memory that each hold up to ``sb`` elements."

:class:`BlockList` reproduces that layout: appending allocates a new block
whenever the current one is full, scans touch one block at a time (which is
what the ``t_bscan = t_scan + phi * N / sb`` cost term models), and the list
can be materialised into a contiguous array when a bucket is merged into the
final sorted index.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.core.calibration import DEFAULT_BLOCK_SIZE
from repro.core.query import QueryResult


class BlockList:
    """An append-only list of values stored in fixed-size blocks.

    Parameters
    ----------
    block_size:
        Maximum number of elements per block (paper: ``sb``).
    dtype:
        Element dtype; defaults to ``int64`` to match the paper's 8-byte
        integers.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE, dtype=np.int64, arena=None) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        #: Optional :class:`~repro.storage.scratch.BlockArena`; when set,
        #: blocks are slab views that spill past the memory budget instead
        #: of anonymous ``np.empty`` allocations summing to O(N).
        self._arena = arena
        self._blocks: List[np.ndarray] = []
        self._last_fill = 0
        self._size = 0

    def _new_block(self) -> np.ndarray:
        if self._arena is not None:
            return self._arena.new_block()
        return np.empty(self.block_size, dtype=self.dtype)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def n_blocks(self) -> int:
        """Number of allocated blocks."""
        return len(self._blocks)

    @property
    def n_allocations(self) -> int:
        """Alias of :attr:`n_blocks`; each block is one allocation (cost τ)."""
        return len(self._blocks)

    def memory_footprint(self) -> int:
        """Bytes allocated by the block list."""
        return self.n_blocks * self.block_size * self.dtype.itemsize

    # ------------------------------------------------------------------
    def append_array(self, values: np.ndarray, owned: bool = False) -> None:
        """Append ``values`` (in order), allocating blocks as needed.

        Bulk appends are vectorised: after topping up the partial tail
        block, all completely filled blocks are materialised with a single
        copy-and-reshape (each block is a row of one contiguous allocation)
        instead of a per-block Python loop, and only the new partial tail is
        filled element-wise.

        ``owned=True`` asserts the caller relinquishes ``values`` (it is a
        freshly materialised array no one else mutates): full blocks then
        become zero-copy row views of it.  Only the partial tail — the one
        block that is written after creation — is ever copied.
        """
        values = np.asarray(values, dtype=self.dtype)
        if values.size == 0:
            return
        offset = 0
        # Top up the current partial tail block first.
        if self._blocks and self._last_fill < self.block_size:
            take = min(self.block_size - self._last_fill, values.size)
            block = self._blocks[-1]
            block[self._last_fill : self._last_fill + take] = values[:take]
            self._last_fill += take
            offset = take
        remaining = values.size - offset
        # All completely filled blocks at once: rows of a 2-D array are full
        # blocks (they are created full and never written afterwards).
        n_full = remaining // self.block_size
        if n_full > 0 and self._arena is None:
            stop = offset + n_full * self.block_size
            region = values[offset:stop]
            if not owned:
                region = np.array(region, dtype=self.dtype)
            bulk = region.reshape(n_full, self.block_size)
            self._blocks.extend(bulk)
            self._last_fill = self.block_size
            offset = stop
            remaining -= n_full * self.block_size
        elif n_full > 0:
            # Arena-backed: full blocks are copied into spillable slab views
            # (the zero-copy path would pin the caller's anonymous array).
            for _ in range(n_full):
                block = self._new_block()
                block[:] = values[offset : offset + self.block_size]
                self._blocks.append(block)
                offset += self.block_size
            self._last_fill = self.block_size
            remaining -= n_full * self.block_size
        # The leftover partial tail gets a fresh, writable block.
        if remaining > 0:
            block = self._new_block()
            block[:remaining] = values[offset:]
            self._blocks.append(block)
            self._last_fill = remaining
        self._size += values.size

    def append(self, value) -> None:
        """Append a single value (convenience wrapper for tests)."""
        self.append_array(np.asarray([value], dtype=self.dtype))

    # ------------------------------------------------------------------
    def iter_filled(self) -> Iterator[np.ndarray]:
        """Iterate over the filled portion of every block, in append order."""
        for index, block in enumerate(self._blocks):
            if index == len(self._blocks) - 1:
                yield block[: self._last_fill]
            else:
                yield block

    def scan(self, low, high) -> QueryResult:
        """Predicated scan of all stored values against ``[low, high]``."""
        total = QueryResult.empty()
        for chunk in self.iter_filled():
            mask = (chunk >= low) & (chunk <= high)
            total += QueryResult.from_masked(chunk, mask)
        return total

    def to_array(self) -> np.ndarray:
        """Concatenate the stored values into a single contiguous array."""
        if not self._blocks:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(list(self.iter_filled()))

    def _iter_range(self, start: int, count: int):
        """Yield the block pieces covering logical range ``[start, start+count)``.

        Clamps the range to the stored data and walks the filled blocks,
        yielding each overlapping piece in order.
        """
        if count <= 0:
            return
        start = max(0, start)
        stop = min(self._size, start + count)
        block_start = 0
        for chunk in self.iter_filled():
            block_stop = block_start + chunk.size
            if block_stop > start and block_start < stop:
                lo = max(0, start - block_start)
                hi = min(chunk.size, stop - block_start)
                yield chunk[lo:hi]
            block_start = block_stop
            if block_start >= stop:
                break

    def slice_array(self, start: int, count: int) -> np.ndarray:
        """Return ``count`` elements starting at logical offset ``start``.

        Used by the progressive merge step, which drains a bucket a bounded
        number of elements at a time.
        """
        pieces = list(self._iter_range(start, count))
        if not pieces:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(pieces)

    def drain_into(self, target: np.ndarray, target_start: int, start: int, count: int) -> int:
        """Copy ``count`` elements from logical offset ``start`` into
        ``target[target_start:]``, block by block.

        The merge-loop primitive of the construction-kernel layer: draining a
        bucket into its final-array segment copies each block straight into
        place instead of materialising an intermediate concatenation
        (:meth:`slice_array`) that is immediately copied again.  Returns the
        number of elements copied.
        """
        copied = 0
        for piece in self._iter_range(start, count):
            position = target_start + copied
            target[position : position + piece.size] = piece
            copied += piece.size
        return copied

    def clear(self) -> None:
        """Release all blocks."""
        self._blocks = []
        self._last_fill = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BlockList(size={self._size}, blocks={self.n_blocks}, "
            f"block_size={self.block_size})"
        )


class BucketSet:
    """A fixed number of :class:`BlockList` buckets addressed by bucket id."""

    def __init__(
        self,
        n_buckets: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        dtype=np.int64,
        arena=None,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        self.buckets: List[BlockList] = [
            BlockList(block_size=block_size, dtype=dtype, arena=arena)
            for _ in range(n_buckets)
        ]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    def __getitem__(self, bucket_id: int) -> BlockList:
        return self.buckets[bucket_id]

    def scatter(self, values: np.ndarray, bucket_ids: np.ndarray) -> None:
        """Append each value to the bucket named by ``bucket_ids`` (stable).

        One grouped scatter per chunk: a single stable argsort of the bucket
        ids clusters the chunk by bucket, ``np.bincount`` provides the group
        offsets, and every non-empty bucket receives one contiguous slice.
        The per-chunk work is ``O(n log b)`` regardless of the fan-out,
        versus the ``O(n * b)`` of the masked reference scatter
        (:meth:`scatter_masked`), and within-bucket input order is preserved.
        """
        values = np.asarray(values, dtype=self.dtype)
        bucket_ids = np.asarray(bucket_ids)
        if values.size == 0:
            return
        # Stable argsort on integer keys is a radix sort whose pass count
        # follows the key width: bucket ids normally fit one or two bytes,
        # so narrowing them first makes the grouping ~8x faster than sorting
        # int64 ids.  Fan-outs beyond uint16 keep their original width.
        if bucket_ids.itemsize > 2 and self.n_buckets <= 65536:
            narrow = np.uint8 if self.n_buckets <= 256 else np.uint16
            bucket_ids = bucket_ids.astype(narrow)
        order = np.argsort(bucket_ids, kind="stable")
        counts = np.bincount(bucket_ids, minlength=self.n_buckets)
        grouped = values[order]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        for bucket_id in np.flatnonzero(counts):
            # ``grouped`` is freshly materialised and owned by this call, so
            # full blocks can be zero-copy views of it.
            self.buckets[int(bucket_id)].append_array(
                grouped[offsets[bucket_id] : offsets[bucket_id + 1]], owned=True
            )

    def scatter_masked(self, values: np.ndarray, bucket_ids: np.ndarray) -> None:
        """Reference scatter: one boolean mask per distinct bucket id.

        This is the pre-kernel-layer implementation, kept verbatim as the
        equivalence oracle for :meth:`scatter` and as the baseline of the
        construction-throughput benchmark.
        """
        values = np.asarray(values, dtype=self.dtype)
        bucket_ids = np.asarray(bucket_ids)
        for bucket_id in np.unique(bucket_ids):
            mask = bucket_ids == bucket_id
            self.buckets[int(bucket_id)].append_array(values[mask])

    def scan(self, low, high, bucket_range: range | None = None) -> QueryResult:
        """Scan the given buckets (all by default) for values in ``[low, high]``."""
        total = QueryResult.empty()
        indices = bucket_range if bucket_range is not None else range(self.n_buckets)
        for bucket_id in indices:
            total += self.buckets[bucket_id].scan(low, high)
        return total

    def sizes(self) -> np.ndarray:
        """Array of bucket sizes."""
        return np.array([len(bucket) for bucket in self.buckets], dtype=np.int64)

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: every bucket flattened to one array.

        Block boundaries are an allocation detail, not semantics — the
        restored set holds identical values in identical order, re-blocked.
        """
        return {
            "n_buckets": self.n_buckets,
            "block_size": self.block_size,
            "dtype": self.dtype.name,
            "buckets": [bucket.to_array() for bucket in self.buckets],
        }

    @classmethod
    def from_state(cls, state: dict) -> "BucketSet":
        """Rebuild a bucket set from :meth:`state_dict` output."""
        bucket_set = cls(
            int(state["n_buckets"]),
            block_size=int(state["block_size"]),
            dtype=np.dtype(str(state["dtype"])),
        )
        for bucket, values in zip(bucket_set.buckets, state["buckets"]):
            if np.asarray(values).size:
                bucket.append_array(np.asarray(values, dtype=bucket_set.dtype), owned=True)
        return bucket_set

    def total_allocations(self) -> int:
        """Total number of block allocations across all buckets."""
        return sum(bucket.n_allocations for bucket in self.buckets)

    def memory_footprint(self) -> int:
        """Bytes allocated across all buckets."""
        return sum(bucket.memory_footprint() for bucket in self.buckets)

    def clear(self) -> None:
        """Release every bucket's blocks."""
        for bucket in self.buckets:
            bucket.clear()
