"""Linked lists of fixed-size blocks backing the bucket-based algorithms.

Section 3.2 of the paper: "To avoid having to allocate large regions of
sequential data for every bucket, the buckets are implemented as a linked
list of blocks of memory that each hold up to ``sb`` elements."

:class:`BlockList` reproduces that layout: appending allocates a new block
whenever the current one is full, scans touch one block at a time (which is
what the ``t_bscan = t_scan + phi * N / sb`` cost term models), and the list
can be materialised into a contiguous array when a bucket is merged into the
final sorted index.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.core.calibration import DEFAULT_BLOCK_SIZE
from repro.core.query import QueryResult


class BlockList:
    """An append-only list of values stored in fixed-size blocks.

    Parameters
    ----------
    block_size:
        Maximum number of elements per block (paper: ``sb``).
    dtype:
        Element dtype; defaults to ``int64`` to match the paper's 8-byte
        integers.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE, dtype=np.int64) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        self._blocks: List[np.ndarray] = []
        self._last_fill = 0
        self._size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def n_blocks(self) -> int:
        """Number of allocated blocks."""
        return len(self._blocks)

    @property
    def n_allocations(self) -> int:
        """Alias of :attr:`n_blocks`; each block is one allocation (cost τ)."""
        return len(self._blocks)

    def memory_footprint(self) -> int:
        """Bytes allocated by the block list."""
        return self.n_blocks * self.block_size * self.dtype.itemsize

    # ------------------------------------------------------------------
    def append_array(self, values: np.ndarray) -> None:
        """Append ``values`` (in order), allocating blocks as needed."""
        values = np.asarray(values, dtype=self.dtype)
        offset = 0
        remaining = values.size
        while remaining > 0:
            if not self._blocks or self._last_fill == self.block_size:
                self._blocks.append(np.empty(self.block_size, dtype=self.dtype))
                self._last_fill = 0
            space = self.block_size - self._last_fill
            take = min(space, remaining)
            block = self._blocks[-1]
            block[self._last_fill : self._last_fill + take] = values[offset : offset + take]
            self._last_fill += take
            offset += take
            remaining -= take
        self._size += values.size

    def append(self, value) -> None:
        """Append a single value (convenience wrapper for tests)."""
        self.append_array(np.asarray([value], dtype=self.dtype))

    # ------------------------------------------------------------------
    def iter_filled(self) -> Iterator[np.ndarray]:
        """Iterate over the filled portion of every block, in append order."""
        for index, block in enumerate(self._blocks):
            if index == len(self._blocks) - 1:
                yield block[: self._last_fill]
            else:
                yield block

    def scan(self, low, high) -> QueryResult:
        """Predicated scan of all stored values against ``[low, high]``."""
        total = QueryResult.empty()
        for chunk in self.iter_filled():
            mask = (chunk >= low) & (chunk <= high)
            total += QueryResult.from_masked(chunk, mask)
        return total

    def to_array(self) -> np.ndarray:
        """Concatenate the stored values into a single contiguous array."""
        if not self._blocks:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(list(self.iter_filled()))

    def slice_array(self, start: int, count: int) -> np.ndarray:
        """Return ``count`` elements starting at logical offset ``start``.

        Used by the progressive merge step, which drains a bucket a bounded
        number of elements at a time.
        """
        if count <= 0:
            return np.empty(0, dtype=self.dtype)
        start = max(0, start)
        stop = min(self._size, start + count)
        if start >= stop:
            return np.empty(0, dtype=self.dtype)
        pieces = []
        block_start = 0
        for chunk in self.iter_filled():
            block_stop = block_start + chunk.size
            if block_stop > start and block_start < stop:
                lo = max(0, start - block_start)
                hi = min(chunk.size, stop - block_start)
                pieces.append(chunk[lo:hi])
            block_start = block_stop
            if block_start >= stop:
                break
        if not pieces:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(pieces)

    def clear(self) -> None:
        """Release all blocks."""
        self._blocks = []
        self._last_fill = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BlockList(size={self._size}, blocks={self.n_blocks}, "
            f"block_size={self.block_size})"
        )


class BucketSet:
    """A fixed number of :class:`BlockList` buckets addressed by bucket id."""

    def __init__(self, n_buckets: int, block_size: int = DEFAULT_BLOCK_SIZE, dtype=np.int64) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        self.buckets: List[BlockList] = [
            BlockList(block_size=block_size, dtype=dtype) for _ in range(n_buckets)
        ]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    def __getitem__(self, bucket_id: int) -> BlockList:
        return self.buckets[bucket_id]

    def scatter(self, values: np.ndarray, bucket_ids: np.ndarray) -> None:
        """Append each value to the bucket named by ``bucket_ids`` (stable).

        The scatter iterates over the (small, fixed) number of buckets rather
        than over elements, so the per-element work stays vectorised.
        """
        values = np.asarray(values, dtype=self.dtype)
        bucket_ids = np.asarray(bucket_ids)
        for bucket_id in np.unique(bucket_ids):
            mask = bucket_ids == bucket_id
            self.buckets[int(bucket_id)].append_array(values[mask])

    def scan(self, low, high, bucket_range: range | None = None) -> QueryResult:
        """Scan the given buckets (all by default) for values in ``[low, high]``."""
        total = QueryResult.empty()
        indices = bucket_range if bucket_range is not None else range(self.n_buckets)
        for bucket_id in indices:
            total += self.buckets[bucket_id].scan(low, high)
        return total

    def sizes(self) -> np.ndarray:
        """Array of bucket sizes."""
        return np.array([len(bucket) for bucket in self.buckets], dtype=np.int64)

    def total_allocations(self) -> int:
        """Total number of block allocations across all buckets."""
        return sum(bucket.n_allocations for bucket in self.buckets)

    def memory_footprint(self) -> int:
        """Bytes allocated across all buckets."""
        return sum(bucket.memory_footprint() for bucket in self.buckets)

    def clear(self) -> None:
        """Release every bucket's blocks."""
        for bucket in self.buckets:
            bucket.clear()
