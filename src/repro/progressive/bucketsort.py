"""Progressive Bucketsort, equi-height partitions (Section 3.3).

Progressive Bucketsort is structurally identical to Progressive Radixsort
(MSD) but chooses buckets by *value-based* range partitioning instead of
radix clustering: a set of bucket boundaries that split the data into
(approximately) equally sized buckets, which keeps the partitioning balanced
also for skewed data distributions.  Locating the bucket of an element costs
an extra binary search over the boundaries (``log2(b)`` per element), which
is exactly the extra term in the creation-phase cost model.

Creation
    Every query moves ``delta * N`` elements of the base column into the
    equi-height buckets via the shared grouped scatter of
    :meth:`~repro.progressive.blocks.BucketSet.scatter` (bucket ids come
    from a vectorised binary search over the boundaries — value-based
    routing is order-exact for any dtype, so Bucketsort needs no key
    codec); queries scan the buckets overlapping the predicate plus the
    not-yet-bucketed column tail.

Refinement
    The buckets are merged in value order into the final sorted array.  Each
    bucket is first drained into its (pre-computed) segment of the array and
    then sorted progressively with the shared
    :class:`~repro.progressive.sorter.ProgressiveSorter` (whose whole-node
    partitions route through the cracking-kernel decision tree) — the paper's
    "sort the individual buckets into the final sorted list using Progressive
    Quicksort", which avoids a latency spike when a large bucket is merged.

Consolidation
    Identical to the other algorithms: a B+-tree cascade over the sorted
    array.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT
from repro.core.calibration import DEFAULT_BLOCK_SIZE, CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.progressive.base import ProgressiveIndexBase
from repro.progressive.batch_search import ConsolidatedBatchSearch
from repro.progressive.blocks import BucketSet
from repro.progressive.sorter import DEFAULT_SORT_THRESHOLD, ProgressiveSorter
from repro.storage.column import Column

#: Default number of equi-height buckets (matches the radix variants).
DEFAULT_BUCKET_COUNT = 64

#: Grid cells per bucket used by the routing accelerator.
GRID_CELLS_PER_BUCKET = 16


class BoundsRouter:
    """Grid-accelerated bucket routing over value-based bucket boundaries.

    Locating an element's equi-height bucket is a binary search over the
    boundaries — the ``log2(b)`` term of the creation cost model — and on
    random data every probe is a mispredicted branch, which makes the plain
    vectorised ``np.searchsorted`` the dominant cost of the creation-phase
    scatter.  The router overlays a uniform grid on the value domain and
    precomputes, per cell, the bucket of the cell's lower edge.  Routing a
    chunk is then one multiply + gather per element; the proposed bucket is
    *verified* exactly against the neighbouring boundaries (so float
    rounding in the grid arithmetic can never mis-route), and only the
    elements that fail verification — those in cells straddling a boundary,
    about ``n_bounds / n_cells`` of the data — fall back to the binary
    search.  Degenerate domains (zero or non-finite span) disable the grid
    and route everything through ``np.searchsorted`` unchanged.
    """

    def __init__(self, bounds: np.ndarray, value_min, value_max) -> None:
        self.bounds = np.asarray(bounds, dtype=np.float64)
        self._low = float(value_min)
        span = float(value_max) - self._low
        n_cells = max(1, GRID_CELLS_PER_BUCKET * (self.bounds.size + 1))
        self._scale = n_cells / span if np.isfinite(span) and span > 0 else 0.0
        if self._scale > 0 and np.isfinite(self._scale):
            edges = self._low + np.arange(n_cells) / self._scale
            self._cell_bucket = np.searchsorted(self.bounds, edges, side="right")
            self._padded = np.concatenate([[-np.inf], self.bounds, [np.inf]])
            self._n_cells = n_cells
        else:
            self._cell_bucket = None

    def route(self, values: np.ndarray) -> np.ndarray:
        """Bucket id of every value (identical to the plain binary search)."""
        if self._cell_bucket is None:
            return np.searchsorted(self.bounds, values, side="right")
        cells = ((values - self._low) * self._scale).astype(np.int64)
        np.clip(cells, 0, self._n_cells - 1, out=cells)
        ids = self._cell_bucket[cells]
        verified = (self._padded[ids] <= values) & (values < self._padded[ids + 1])
        misses = np.flatnonzero(~verified)
        if misses.size:
            ids[misses] = np.searchsorted(self.bounds, values[misses], side="right")
        return ids

#: Number of elements sampled to estimate the equi-height bucket boundaries.
#: The paper obtains the bounds "in the scan to answer the first query or
#: from existing statistics"; a fixed-size sample keeps the first-query
#: overhead bounded while producing near-equal bucket sizes.
DEFAULT_BOUNDS_SAMPLE = 65536


class _BucketState(enum.Enum):
    WAITING = "waiting"    # data lives in the bucket's block list
    COPYING = "copying"    # draining the block list into the final array
    SORTING = "sorting"    # progressive quicksort of the array segment
    DONE = "done"


class _MergeBucket:
    """Per-bucket refinement state."""

    __slots__ = ("bucket_id", "offset", "size", "state", "copied", "sorter")

    def __init__(self, bucket_id: int, offset: int, size: int) -> None:
        self.bucket_id = bucket_id
        self.offset = int(offset)
        self.size = int(size)
        self.state = _BucketState.WAITING if size else _BucketState.DONE
        self.copied = 0
        self.sorter: Optional[ProgressiveSorter] = None


class ProgressiveBucketsort(ConsolidatedBatchSearch, ProgressiveIndexBase):
    """Progressive Bucketsort (Equi-Height) index over a single column.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Budget policy.
    constants:
        Cost-model constants.
    n_buckets:
        Number of equi-height buckets.
    block_size:
        Elements per linked block (paper: ``sb``).
    sort_threshold:
        Segment size below which the per-bucket progressive sort finishes a
        piece outright.
    bounds_sample:
        Number of elements sampled to estimate the bucket boundaries.
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    name = "PB"
    description = "Progressive Bucketsort (Equi-Height)"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        n_buckets: int = DEFAULT_BUCKET_COUNT,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
        bounds_sample: int = DEFAULT_BOUNDS_SAMPLE,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants, fanout=fanout)
        if n_buckets < 2:
            raise ValueError(f"n_buckets must be at least 2, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.block_size = int(block_size)
        self.sort_threshold = int(sort_threshold)
        self.bounds_sample = int(bounds_sample)
        self._cost_model.block_size = self.block_size
        # Creation state --------------------------------------------------
        self._bounds: np.ndarray | None = None
        self._router: BoundsRouter | None = None
        self._buckets: BucketSet | None = None
        self._elements_bucketed = 0
        # Refinement state ------------------------------------------------
        self._final_array: np.ndarray | None = None
        self._merge_buckets: List[_MergeBucket] | None = None
        self._worklist: Deque[_MergeBucket] = deque()
        self._unfinished = 0

    # ------------------------------------------------------------------
    @property
    def bounds(self) -> np.ndarray | None:
        """The equi-height bucket boundaries (``n_buckets - 1`` values)."""
        return self._bounds

    def memory_footprint(self) -> int:
        total = 0
        if self._buckets is not None:
            total += self._buckets.memory_footprint()
        if self._final_array is not None:
            total += self._final_array.nbytes
        if self._cascade is not None:
            total += self._cascade.memory_footprint()
        return total

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = super()._family_state()
        if state.get("stage") != "construction" and self._bounds is not None:
            # Consolidated/converged checkpoints keep the bounds too, so a
            # restore does not re-pay the quantile sampling pass.
            state["pb_bounds"] = np.asarray(self._bounds, dtype=np.float64)
        return state

    def _load_family_state(self, state: dict) -> None:
        if "pb_bounds" in state:
            self._bounds = np.asarray(state["pb_bounds"], dtype=np.float64)
            self._router = BoundsRouter(
                self._bounds, self._column.min(), self._column.max()
            )
        super()._load_family_state(state)

    def _construction_state(self) -> dict:
        state = {
            "initialized": self._bounds is not None,
            "elements_bucketed": int(self._elements_bucketed),
        }
        if self._bounds is not None:
            state["bounds"] = np.asarray(self._bounds, dtype=np.float64)
        if self._buckets is not None:
            state["buckets"] = self._buckets.state_dict()
        if self._merge_buckets is not None:
            state["final_array"] = np.array(self._final_array)
            state["merge"] = [
                {
                    "state": merge.state.value,
                    "offset": merge.offset,
                    "size": merge.size,
                    "copied": merge.copied,
                    **(
                        {"sorter": merge.sorter.state_dict()}
                        if merge.sorter is not None and merge.state is _BucketState.SORTING
                        else {}
                    ),
                }
                for merge in self._merge_buckets
            ]
        return state

    def _load_construction_state(self, state: dict) -> None:
        if not state.get("initialized"):
            return
        self._bounds = np.asarray(state["bounds"], dtype=np.float64)
        self._router = BoundsRouter(self._bounds, self._column.min(), self._column.max())
        self._elements_bucketed = int(state["elements_bucketed"])
        if "buckets" in state:
            self._buckets = BucketSet.from_state(state["buckets"])
        if "merge" not in state:
            return
        self._final_array = np.asarray(state["final_array"])
        self._merge_buckets = []
        self._worklist = deque()
        self._unfinished = 0
        for bucket_id, spec in enumerate(state["merge"]):
            merge = _MergeBucket(bucket_id, int(spec["offset"]), int(spec["size"]))
            merge.state = _BucketState(spec["state"])
            merge.copied = int(spec["copied"])
            if "sorter" in spec:
                merge.sorter = ProgressiveSorter.from_state(self._final_array, spec["sorter"])
                merge.sorter.scratch_allocator = self._scratch_pool()
            self._merge_buckets.append(merge)
            if merge.state is not _BucketState.DONE:
                self._unfinished += 1
                self._worklist.append(merge)

    def _restore_final_array(self, leaf: np.ndarray, sorted_ready: bool) -> None:
        self._final_array = leaf

    def _initialize_bounds(self) -> None:
        n = len(self._column)
        data = self._column.data
        if n > self.bounds_sample:
            step = max(1, n // self.bounds_sample)
            sample = data[::step]
        else:
            sample = data
        quantiles = np.linspace(0.0, 1.0, self.n_buckets + 1)[1:-1]
        self._bounds = np.quantile(sample, quantiles)
        self._router = BoundsRouter(self._bounds, self._column.min(), self._column.max())

    # ------------------------------------------------------------------
    # Creation phase
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        self._initialize_bounds()
        self._buckets = BucketSet(
            self.n_buckets,
            block_size=self.block_size,
            dtype=self._column.dtype,
            arena=self._block_arena(self.block_size),
        )
        self._elements_bucketed = 0

    def _bucket_id(self, values: np.ndarray) -> np.ndarray:
        return self._router.route(values)

    def _relevant_bucket_range(self, predicate: Predicate) -> range:
        low_id = int(np.searchsorted(self._bounds, predicate.low, side="right"))
        high_id = int(np.searchsorted(self._bounds, predicate.high, side="right"))
        return range(low_id, high_id + 1)

    def _creation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        rho = self._elements_bucketed / n
        bucket_range = self._relevant_bucket_range(predicate)
        indexed_relevant = sum(len(self._buckets[i]) for i in bucket_range)
        alpha = indexed_relevant / n if n else 0.0
        return CostBreakdown(
            scan=(
                max(0.0, 1.0 - rho - delta) * self._cost_model.scan_time(n)
                + alpha * self._cost_model.bucket_scan_time(n)
            ),
            lookup=0.0,
            indexing=delta
            * self._cost_model.equiheight_bucket_write_time(n, self.n_buckets),
        )

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        rho = self._elements_bucketed / n
        bucket_range = self._relevant_bucket_range(predicate)
        bucket_write_time = self._cost_model.equiheight_bucket_write_time(n, self.n_buckets)
        decision = self._decide(
            bucket_write_time,
            lambda d: self._creation_cost(predicate, d),
            max_delta=1.0 - rho,
        )
        delta = decision.delta
        to_bucket = min(n - self._elements_bucketed, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_bucket > 0:
            start = self._elements_bucketed
            stop = start + to_bucket
            step = self._stream_chunk_rows() or to_bucket
            for offset in range(start, stop, step):
                chunk = np.asarray(self._column.data[offset : min(stop, offset + step)])
                self._buckets.scatter(chunk, self._bucket_id(chunk))
                self._elements_bucketed += chunk.size

        result = self._buckets.scan(predicate.low, predicate.high, bucket_range)
        result += self._scan_column(predicate, start=self._elements_bucketed)

        self.last_stats.elements_indexed = to_bucket

        if self._elements_bucketed >= n:
            self._enter_refinement()
        return result

    # ------------------------------------------------------------------
    # Refinement phase
    # ------------------------------------------------------------------
    def _enter_refinement(self) -> None:
        n = len(self._column)
        self._final_array = self._scratch_allocate(n, self._column.dtype)
        sizes = self._buckets.sizes()
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self._merge_buckets = []
        self._unfinished = 0
        for bucket_id in range(self.n_buckets):
            merge = _MergeBucket(bucket_id, int(offsets[bucket_id]), int(sizes[bucket_id]))
            self._merge_buckets.append(merge)
            if merge.state is not _BucketState.DONE:
                self._unfinished += 1
                self._worklist.append(merge)
        self._advance_phase(IndexPhase.REFINEMENT)
        if self._unfinished == 0:
            self._finish_refinement()

    def _bucket_value_bounds(self, bucket_id: int) -> tuple:
        low = float(self._column.min()) if bucket_id == 0 else float(self._bounds[bucket_id - 1])
        high = (
            float(self._column.max())
            if bucket_id == self.n_buckets - 1
            else float(self._bounds[bucket_id])
        )
        return low, high

    def _refine_step(self, element_budget: int) -> int:
        processed = 0
        budget = int(element_budget)
        while budget > 0 and self._worklist:
            merge = self._worklist[0]
            if merge.state is _BucketState.WAITING:
                merge.state = _BucketState.COPYING
            if merge.state is _BucketState.COPYING:
                take = min(budget, merge.size - merge.copied)
                if take > 0:
                    copied = self._buckets[merge.bucket_id].drain_into(
                        self._final_array, merge.offset + merge.copied, merge.copied, take
                    )
                    merge.copied += copied
                    processed += copied
                    budget -= copied
                if merge.copied >= merge.size:
                    self._buckets[merge.bucket_id].clear()
                    value_low, value_high = self._bucket_value_bounds(merge.bucket_id)
                    merge.sorter = ProgressiveSorter(
                        self._final_array,
                        start=merge.offset,
                        end=merge.offset + merge.size,
                        value_low=value_low,
                        value_high=value_high,
                        sort_threshold=self.sort_threshold,
                    )
                    merge.sorter.scratch_allocator = self._scratch_pool()
                    merge.state = _BucketState.SORTING
            elif merge.state is _BucketState.SORTING:
                if self.budget.pooled and budget >= merge.sorter.remaining_work():
                    done = merge.sorter.finish()
                else:
                    done = merge.sorter.refine(budget)
                processed += done
                budget -= done
                if merge.sorter.is_sorted:
                    merge.state = _BucketState.DONE
                    self._unfinished -= 1
                    self._worklist.popleft()
                elif done == 0:  # pragma: no cover - defensive
                    break
            else:  # pragma: no cover - defensive
                self._worklist.popleft()
        return processed

    def _query_merge_bucket(self, merge: _MergeBucket, predicate: Predicate) -> QueryResult:
        if merge.size == 0:
            return QueryResult.empty()
        if merge.state in (_BucketState.WAITING, _BucketState.COPYING):
            # The block list still holds the bucket's complete data.
            return self._buckets[merge.bucket_id].scan(predicate.low, predicate.high)
        if merge.state is _BucketState.SORTING:
            return merge.sorter.query(predicate)
        segment = self._final_array[merge.offset : merge.offset + merge.size]
        lo = np.searchsorted(segment, predicate.low, side="left")
        hi = np.searchsorted(segment, predicate.high, side="right")
        if hi <= lo:
            return QueryResult.empty()
        matched = segment[lo:hi]
        return QueryResult(matched.sum(), int(matched.size))

    def _relevant_refinement_size(self, merge: _MergeBucket, predicate: Predicate) -> int:
        if merge.size == 0 or merge.state is _BucketState.DONE:
            return 0
        if merge.state is _BucketState.SORTING:
            return int(merge.sorter.scanned_fraction(predicate) * merge.size)
        return merge.size

    def _refinement_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        bucket_range = self._relevant_bucket_range(predicate)
        relevant = sum(
            self._relevant_refinement_size(self._merge_buckets[i], predicate)
            for i in bucket_range
        )
        alpha = relevant / n if n else 0.0
        return CostBreakdown(
            scan=alpha * self._cost_model.bucket_scan_time(n),
            lookup=0.0,
            indexing=delta * self._cost_model.swap_time(n),
        )

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        swap_time = self._cost_model.swap_time(n)
        bucket_range = self._relevant_bucket_range(predicate)
        decision = self._decide(
            swap_time, lambda d: self._refinement_cost(predicate, d)
        )
        element_budget = int(np.ceil(decision.delta * n)) if decision.delta > 0 else 0

        refined = self._refine_step(element_budget) if element_budget > 0 else 0

        result = QueryResult.empty()
        for bucket_id in bucket_range:
            result += self._query_merge_bucket(self._merge_buckets[bucket_id], predicate)

        self.last_stats.elements_indexed = refined

        if self._unfinished == 0:
            self._finish_refinement()
        return result

    def _finish_refinement(self) -> None:
        """All buckets merged and sorted: release them and consolidate."""
        self._buckets = None
        self._merge_buckets = None
        self._enter_consolidation(self._final_array)
