"""Progressive Radixsort, most-significant digits first (Section 3.2).

Creation
    ``b`` empty buckets (linked lists of fixed-size blocks) are allocated on
    the first query.  Every query moves another ``delta * N`` elements of the
    base column into the buckets, choosing the bucket by the most significant
    ``log2(b)`` bits of the element's order-preserving radix key (a single
    shift; see :class:`~repro.core.keys.RadixKeySpace` — equivalent to the
    paper's ``value - min`` for integer columns, exact IEEE-754 bit-pattern
    ordering for floats).  Because the most significant bits are used, the
    buckets form a value-range partitioning, so range queries only scan the
    buckets overlapping the predicate plus the not-yet-bucketed tail of the
    column.

Refinement
    Each bucket is recursively re-partitioned by the next ``log2(b)`` bits.
    Buckets that fit the cache threshold are instead sorted outright and
    written into their final position of the sorted index array (their
    position is known because the buckets are value-ordered).  A small tree
    of radix nodes routes queries to the right buckets / final-array
    segments while the refinement is in progress.

Consolidation
    Identical to Progressive Quicksort: a B+-tree cascade is built over the
    final sorted array.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT
from repro.core.calibration import DEFAULT_BLOCK_SIZE, CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.keys import RadixKeySpace
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.progressive.base import ProgressiveIndexBase
from repro.progressive.batch_search import ConsolidatedBatchSearch
from repro.progressive.blocks import BlockList, BucketSet
from repro.progressive.sorter import DEFAULT_SORT_THRESHOLD
from repro.storage.column import Column

#: Default number of radix buckets.  The paper uses 64 so that all bucket
#: write positions fit the L1 cache lines / TLB entries of their machine.
DEFAULT_BUCKET_COUNT = 64


class _NodeState(enum.Enum):
    """Refinement state of a radix node."""

    WAITING = "waiting"          # data still in the node's source block list
    COPYING = "copying"          # small node: moving data into the final array
    PARTITIONING = "partitioning"  # large node: scattering into child buckets
    EXPANDED = "expanded"        # children created; node itself holds no data
    DONE = "done"                # final array segment sorted


class _RadixNode:
    """One bucket of the (recursive) MSD radix partitioning.

    A node owns a contiguous segment ``[offset, offset + size)`` of the final
    sorted array and the block list holding its (unsorted) values.  It covers
    the *relative radix-key* range ``[value_low, value_low + 2^(shift +
    bits_per_level))`` — biased keys, so the routing is exact for both
    integer and float columns.
    """

    __slots__ = (
        "source",
        "offset",
        "size",
        "value_low",
        "shift",
        "state",
        "copied",
        "moved",
        "children",
        "child_set",
    )

    def __init__(self, source: BlockList, offset: int, size: int, value_low: int, shift: int) -> None:
        self.source = source
        self.offset = int(offset)
        self.size = int(size)
        self.value_low = int(value_low)
        self.shift = int(shift)
        self.state = _NodeState.WAITING
        self.copied = 0
        self.moved = 0
        self.children: Optional[List["_RadixNode"]] = None
        self.child_set: Optional[BucketSet] = None


class ProgressiveRadixsortMSD(ConsolidatedBatchSearch, ProgressiveIndexBase):
    """Progressive Radixsort (MSD) index over a single column.

    Parameters
    ----------
    column:
        Column to index (``int64`` or ``float64``; bucket routing happens in
        the column's order-preserving :class:`~repro.core.keys.RadixKeySpace`).
    budget:
        Budget policy.
    constants:
        Cost-model constants.
    n_buckets:
        Radix fan-out ``b`` (a power of two).
    block_size:
        Elements per linked block (paper: ``sb``).
    sort_threshold:
        Buckets of at most this many elements are sorted outright instead of
        being re-partitioned (the paper's L1-cache rule).
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    name = "PMSD"
    description = "Progressive Radixsort (MSD)"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        n_buckets: int = DEFAULT_BUCKET_COUNT,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants, fanout=fanout)
        if n_buckets < 2 or (n_buckets & (n_buckets - 1)) != 0:
            raise ValueError(f"n_buckets must be a power of two >= 2, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.bits_per_level = int(np.log2(self.n_buckets))
        self.block_size = int(block_size)
        self.sort_threshold = int(sort_threshold)
        self._cost_model.block_size = self.block_size
        # Creation state --------------------------------------------------
        self._buckets: BucketSet | None = None
        self._keyspace: RadixKeySpace | None = None
        self._shift = 0
        self._elements_bucketed = 0
        # Refinement state ------------------------------------------------
        self._final_array: np.ndarray | None = None
        self._roots: List[_RadixNode] | None = None
        self._worklist: Deque[_RadixNode] = deque()
        self._unfinished_nodes = 0

    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        total = 0
        if self._buckets is not None:
            total += self._buckets.memory_footprint()
        if self._final_array is not None:
            total += self._final_array.nbytes
        if self._cascade is not None:
            total += self._cascade.memory_footprint()
        return total

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _rebuild_keyspace(self) -> None:
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_level
        )
        self._shift = self._keyspace.top_shift

    def _construction_state(self) -> dict:
        state = {
            "initialized": self._keyspace is not None,
            "elements_bucketed": int(self._elements_bucketed),
        }
        if self._buckets is not None and self._roots is None:
            state["buckets"] = self._buckets.state_dict()
        if self._roots is not None:
            nodes: list = []
            ids: dict = {}

            def visit(node: _RadixNode) -> int:
                number = len(nodes)
                ids[id(node)] = number
                spec = {
                    "offset": node.offset,
                    "size": node.size,
                    "value_low": node.value_low,
                    "shift": node.shift,
                    "state": node.state.value,
                    "copied": node.copied,
                    "moved": node.moved,
                    "children": None,
                }
                if node.state in (
                    _NodeState.WAITING, _NodeState.COPYING, _NodeState.PARTITIONING
                ):
                    spec["source"] = node.source.to_array()
                if node.state is _NodeState.PARTITIONING and node.child_set is not None:
                    spec["child_set"] = node.child_set.state_dict()
                nodes.append(spec)
                if node.children is not None:
                    spec["children"] = [visit(child) for child in node.children]
                return number

            state["roots"] = [visit(root) for root in self._roots]
            state["nodes"] = nodes
            state["worklist"] = [ids[id(node)] for node in self._worklist]
            state["unfinished"] = int(self._unfinished_nodes)
            if self._final_array is not None:
                state["final_array"] = np.array(self._final_array)
        return state

    def _load_construction_state(self, state: dict) -> None:
        if not state.get("initialized"):
            return
        self._rebuild_keyspace()
        self._elements_bucketed = int(state["elements_bucketed"])
        if "buckets" in state:
            self._buckets = BucketSet.from_state(state["buckets"])
        if "nodes" not in state:
            return
        if "final_array" in state:
            self._final_array = np.asarray(state["final_array"])
        specs = state["nodes"]
        built: List[_RadixNode] = []
        for spec in specs:
            source = BlockList(block_size=self.block_size, dtype=self._column.dtype)
            if "source" in spec and np.asarray(spec["source"]).size:
                source.append_array(
                    np.asarray(spec["source"], dtype=self._column.dtype), owned=True
                )
            node = _RadixNode(
                source=source,
                offset=int(spec["offset"]),
                size=int(spec["size"]),
                value_low=int(spec["value_low"]),
                shift=int(spec["shift"]),
            )
            node.state = _NodeState(spec["state"])
            node.copied = int(spec["copied"])
            node.moved = int(spec["moved"])
            if "child_set" in spec:
                node.child_set = BucketSet.from_state(spec["child_set"])
            built.append(node)
        for spec, node in zip(specs, built):
            if spec["children"] is not None:
                node.children = [built[int(i)] for i in spec["children"]]
        self._roots = [built[int(i)] for i in state["roots"]]
        self._worklist = deque(built[int(i)] for i in state.get("worklist", []))
        self._unfinished_nodes = int(state.get("unfinished", 0))
        self._buckets = BucketSet(
            self.n_buckets, block_size=self.block_size, dtype=self._column.dtype
        )

    def _restore_final_array(self, leaf: np.ndarray, sorted_ready: bool) -> None:
        self._final_array = leaf
        self._rebuild_keyspace()

    # ------------------------------------------------------------------
    # Creation phase
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        n = len(self._column)
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_level
        )
        self._shift = self._keyspace.top_shift
        self._buckets = BucketSet(
            self.n_buckets,
            block_size=self.block_size,
            dtype=self._column.dtype,
            arena=self._block_arena(self.block_size),
        )
        self._elements_bucketed = 0

    def _bucket_id(self, values: np.ndarray) -> np.ndarray:
        shifted = self._keyspace.shifted(values, self._shift)
        return np.minimum(shifted, self.n_buckets - 1)

    def _bucket_id_scalar(self, value) -> int:
        return min(self._keyspace.relative_key(value) >> self._shift, self.n_buckets - 1)

    def _relevant_bucket_range(self, predicate: Predicate) -> range:
        if predicate.high < self._column.min():
            return range(0)
        return range(
            self._bucket_id_scalar(predicate.low),
            self._bucket_id_scalar(predicate.high) + 1,
        )

    def _creation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        rho = self._elements_bucketed / n
        bucket_range = self._relevant_bucket_range(predicate)
        indexed_relevant = sum(len(self._buckets[i]) for i in bucket_range)
        alpha = indexed_relevant / n if n else 0.0
        return CostBreakdown(
            scan=(
                max(0.0, 1.0 - rho - delta) * self._cost_model.scan_time(n)
                + alpha * self._cost_model.bucket_scan_time(n)
            ),
            lookup=0.0,
            indexing=delta * self._cost_model.bucket_write_time(n),
        )

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        rho = self._elements_bucketed / n
        bucket_range = self._relevant_bucket_range(predicate)
        bucket_write_time = self._cost_model.bucket_write_time(n)
        decision = self._decide(
            bucket_write_time,
            lambda d: self._creation_cost(predicate, d),
            max_delta=1.0 - rho,
        )
        delta = decision.delta
        to_bucket = min(n - self._elements_bucketed, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_bucket > 0:
            start = self._elements_bucketed
            stop = start + to_bucket
            step = self._stream_chunk_rows() or to_bucket
            for offset in range(start, stop, step):
                chunk = np.asarray(self._column.data[offset : min(stop, offset + step)])
                self._buckets.scatter(chunk, self._bucket_id(chunk))
                self._elements_bucketed += chunk.size

        result = self._buckets.scan(predicate.low, predicate.high, bucket_range)
        result += self._scan_column(predicate, start=self._elements_bucketed)

        self.last_stats.elements_indexed = to_bucket

        if self._elements_bucketed >= n:
            self._enter_refinement()
        return result

    # ------------------------------------------------------------------
    # Refinement phase
    # ------------------------------------------------------------------
    def _enter_refinement(self) -> None:
        n = len(self._column)
        self._final_array = self._scratch_allocate(n, self._column.dtype)
        sizes = self._buckets.sizes()
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        bucket_span = 1 << self._shift
        self._roots = []
        self._unfinished_nodes = 0
        for bucket_id in range(self.n_buckets):
            size = int(sizes[bucket_id])
            node = _RadixNode(
                source=self._buckets[bucket_id],
                offset=int(offsets[bucket_id]),
                size=size,
                value_low=bucket_id * bucket_span,
                shift=max(0, self._shift - self.bits_per_level),
            )
            self._roots.append(node)
            if size == 0:
                node.state = _NodeState.DONE
            else:
                self._unfinished_nodes += 1
                self._worklist.append(node)
        self._advance_phase(IndexPhase.REFINEMENT)
        if self._unfinished_nodes == 0:
            self._finish_refinement()

    def _node_must_copy(self, node: _RadixNode) -> bool:
        """Small (or unsplittable) nodes are sorted outright into the array."""
        return node.size <= self.sort_threshold or node.shift <= 0 or self._shift == 0

    def _refine_step(self, element_budget: int) -> int:
        processed = 0
        budget = int(element_budget)
        while budget > 0 and self._worklist:
            node = self._worklist[0]
            if node.state is _NodeState.WAITING:
                if self._node_must_copy(node):
                    node.state = _NodeState.COPYING
                else:
                    node.state = _NodeState.PARTITIONING
                    node.child_set = BucketSet(
                        self.n_buckets,
                        block_size=self.block_size,
                        dtype=self._column.dtype,
                        arena=self._block_arena(self.block_size),
                    )
            if node.state is _NodeState.COPYING:
                take = min(budget, node.size - node.copied)
                if take > 0:
                    copied = node.source.drain_into(
                        self._final_array, node.offset + node.copied, node.copied, take
                    )
                    node.copied += copied
                    processed += copied
                    budget -= copied
                if node.copied >= node.size:
                    segment = self._final_array[node.offset : node.offset + node.size]
                    segment.sort()
                    node.source.clear()
                    node.state = _NodeState.DONE
                    self._unfinished_nodes -= 1
                    self._worklist.popleft()
            elif node.state is _NodeState.PARTITIONING:
                take = min(budget, node.size - node.moved)
                if take > 0:
                    chunk = node.source.slice_array(node.moved, take)
                    relative = self._keyspace.relative_keys(chunk) - np.uint64(node.value_low)
                    child_ids = np.minimum(
                        (relative >> np.uint64(node.shift)).astype(np.int64),
                        self.n_buckets - 1,
                    )
                    node.child_set.scatter(chunk, child_ids)
                    node.moved += chunk.size
                    processed += chunk.size
                    budget -= chunk.size
                if node.moved >= node.size:
                    self._expand_node(node)
                    self._worklist.popleft()
            else:  # pragma: no cover - defensive
                self._worklist.popleft()
        return processed

    def _expand_node(self, node: _RadixNode) -> None:
        """Create child nodes once the re-partition of ``node`` completed."""
        node.source.clear()
        sizes = node.child_set.sizes()
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]]) + node.offset
        child_span = 1 << node.shift
        node.children = []
        new_children = 0
        for child_id in range(self.n_buckets):
            size = int(sizes[child_id])
            child = _RadixNode(
                source=node.child_set[child_id],
                offset=int(offsets[child_id]),
                size=size,
                value_low=node.value_low + child_id * child_span,
                shift=max(0, node.shift - self.bits_per_level),
            )
            node.children.append(child)
            if size == 0:
                child.state = _NodeState.DONE
            else:
                new_children += 1
                self._worklist.append(child)
        node.state = _NodeState.EXPANDED
        node.child_set = None
        self._unfinished_nodes += new_children - 1

    def _query_node(
        self, node: _RadixNode, predicate: Predicate, key_low: int, key_high: int
    ) -> QueryResult:
        """Answer ``predicate`` below ``node``.

        ``key_low``/``key_high`` are the predicate bounds as relative radix
        keys; child pruning happens in key space, which is exact for floats
        (the seed compared float predicates against truncated integer child
        bounds and could skip a matching child).
        """
        if node.size == 0:
            return QueryResult.empty()
        if node.state is _NodeState.DONE:
            segment = self._final_array[node.offset : node.offset + node.size]
            lo = np.searchsorted(segment, predicate.low, side="left")
            hi = np.searchsorted(segment, predicate.high, side="right")
            if hi <= lo:
                return QueryResult.empty()
            matched = segment[lo:hi]
            return QueryResult(matched.sum(), int(matched.size))
        if node.state is _NodeState.EXPANDED:
            result = QueryResult.empty()
            child_span = 1 << node.shift
            for child_id, child in enumerate(node.children):
                child_low = node.value_low + child_id * child_span
                if key_high >= child_low and key_low < child_low + child_span:
                    result += self._query_node(child, predicate, key_low, key_high)
            return result
        # WAITING / COPYING / PARTITIONING: the source block list still holds
        # the complete data of this node.
        return node.source.scan(predicate.low, predicate.high)

    def _relevant_node_size(
        self, node: _RadixNode, key_low: int, key_high: int
    ) -> int:
        """Number of elements a query would scan below ``node`` (for α)."""
        if node.size == 0:
            return 0
        if node.state is _NodeState.DONE:
            return 0
        if node.state is _NodeState.EXPANDED:
            total = 0
            child_span = 1 << node.shift
            for child_id, child in enumerate(node.children):
                child_low = node.value_low + child_id * child_span
                if key_high >= child_low and key_low < child_low + child_span:
                    total += self._relevant_node_size(child, key_low, key_high)
            return total
        return node.size

    def _refinement_work_time(self) -> float:
        """Cost of performing the entire remaining refinement at once.

        Every element is read back out of its linked blocks (a bucket
        scan), re-scattered into child buckets (a bucket write), and
        finally drained into its sorted segment of the index array (a
        sequential write plus the cache-sized segment sort).  Pricing only
        the scatter — the paper's simplification — makes the greedy policy
        overshoot its interactivity budget by >2x on this phase.
        """
        n = len(self._column)
        return (
            self._cost_model.bucket_scan_time(n)
            + self._cost_model.bucket_write_time(n)
            + self._cost_model.write_time(n)
            + self._cost_model.segment_sort_time(n)
        )

    def _refinement_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        bucket_range = self._relevant_bucket_range(predicate)
        key_low = self._keyspace.relative_key(predicate.low)
        key_high = self._keyspace.relative_key(predicate.high)
        relevant = sum(
            self._relevant_node_size(self._roots[i], key_low, key_high)
            for i in bucket_range
        )
        alpha = relevant / n if n else 0.0
        return CostBreakdown(
            scan=alpha * self._cost_model.bucket_scan_time(n),
            lookup=0.0,
            indexing=delta * self._refinement_work_time(),
        )

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        bucket_range = self._relevant_bucket_range(predicate)
        key_low = self._keyspace.relative_key(predicate.low)
        key_high = self._keyspace.relative_key(predicate.high)
        decision = self._decide(
            self._refinement_work_time(), lambda d: self._refinement_cost(predicate, d)
        )
        element_budget = int(np.ceil(decision.delta * n)) if decision.delta > 0 else 0

        refined = self._refine_step(element_budget) if element_budget > 0 else 0

        result = QueryResult.empty()
        for bucket_id in bucket_range:
            result += self._query_node(self._roots[bucket_id], predicate, key_low, key_high)

        self.last_stats.elements_indexed = refined

        if self._unfinished_nodes == 0:
            self._finish_refinement()
        return result

    def _finish_refinement(self) -> None:
        """All nodes done: release the buckets and start consolidating."""
        self._buckets = None
        self._roots = None
        self._enter_consolidation(self._final_array)
