"""Progressive indexing algorithms (the paper's core contribution).

The four algorithms of Section 3 are implemented here, together with the
shared machinery they are built from:

* :mod:`repro.progressive.blocks` — linked lists of fixed-size blocks used by
  the bucket-based algorithms.
* :mod:`repro.progressive.pivot_tree` — the binary tree of pivots tracking
  partially partitioned ranges during Quicksort-style refinement.
* :mod:`repro.progressive.sorter` — a reusable, budget-bounded progressive
  range sorter (creation-phase mechanics applied to refinement).
* :mod:`repro.progressive.consolidation` — progressive construction of the
  B+-tree cascade from a sorted array.
* :mod:`repro.progressive.base` — the shared life-cycle driver: phase
  dispatch, budget-controller routing, and the consolidation / converged
  phases implemented once for all four algorithms.
* :mod:`repro.progressive.quicksort` — Progressive Quicksort.
* :mod:`repro.progressive.radixsort_msd` — Progressive Radixsort (MSD).
* :mod:`repro.progressive.radixsort_lsd` — Progressive Radixsort (LSD).
* :mod:`repro.progressive.bucketsort` — Progressive Bucketsort (Equi-Height).
"""

from repro.progressive.base import ProgressiveIndexBase
from repro.progressive.bucketsort import ProgressiveBucketsort
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.progressive.radixsort_lsd import ProgressiveRadixsortLSD
from repro.progressive.radixsort_msd import ProgressiveRadixsortMSD

__all__ = [
    "ProgressiveBucketsort",
    "ProgressiveIndexBase",
    "ProgressiveQuicksort",
    "ProgressiveRadixsortLSD",
    "ProgressiveRadixsortMSD",
]
