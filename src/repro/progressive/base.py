"""Shared life-cycle driver of the four progressive indexes.

Every progressive indexing algorithm of the paper moves through the same
phases — creation, refinement, consolidation, converged — and ends the same
way: a fully sorted array consolidated into a B+-tree cascade.  Before this
module existed, each of the four algorithms carried its own copy of the
phase dispatch, the consolidation-phase execution, and the converged-path
execution; :class:`ProgressiveIndexBase` is the template method that owns
all of it:

* phase transitions go through the index's shared
  :class:`~repro.core.phase.IndexLifecycle` (monotone, history-recording);
* every per-query ``delta`` decision routes through the
  :class:`~repro.core.policy.BudgetController` with the current phase's
  cost formula exposed as a side-effect-free ``predict(delta)`` callable —
  which is also what powers the public
  :meth:`~repro.core.index.BaseIndex.predicted_cost` API that
  :class:`~repro.core.policy.CostModelGreedy` solves against;
* the consolidation phase (progressively copying the sorted array into
  cascade levels) and the converged path are implemented once.

Subclasses implement the creation and refinement phases plus their cost
formulas (:meth:`_creation_cost`, :meth:`_refinement_cost`).

Mutable columns ride on the shared :class:`~repro.core.overlay.DeltaOverlay`
mixin (inherited through :class:`~repro.core.index.BaseIndex`): structures
are built over the snapshot pinned at creation, answers are corrected with
the pending delta, and — because every progressive index converges to a
sorted array under a B+-tree cascade — the converged family implements the
overlay's *fold*: the buffered inserts/tombstones are merged into the leaf
array and the cascade levels are resampled, paid for by the ``MERGE``-phase
budget decisions the same way creation/refinement/consolidation work was.
"""

from __future__ import annotations

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT, CascadeTree
from repro.core.calibration import CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.progressive.consolidation import ProgressiveConsolidator
from repro.storage.column import Column
from repro.storage.delta import merge_sorted_with_delta
from repro.storage.membudget import budget_of


class ProgressiveIndexBase(BaseIndex):
    """Template-method base class of the progressive indexing algorithms.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Budget policy (fixed delta, time-adaptive, cost-model greedy, or a
        pooled batch reservoir).
    constants:
        Cost-model constants.
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    #: Once converged, the sorted array / cascade lookups of this family are
    #: pure reads over frozen structures (plus idempotent prefix-sum caches),
    #: so the serving scheduler may run them from concurrent reader threads.
    concurrent_reads = True

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        self.fanout = int(fanout)
        self._consolidator: ProgressiveConsolidator | None = None
        self._cascade = None

    # ------------------------------------------------------------------
    # Phase dispatch
    # ------------------------------------------------------------------
    def _execute(self, predicate: Predicate) -> QueryResult:
        if self.phase is IndexPhase.INACTIVE:
            self._initialize()
            self._register_scan_time()
            self._advance_phase(IndexPhase.CREATION)
        phase = self.phase
        if phase is IndexPhase.CREATION:
            return self._execute_creation(predicate)
        if phase is IndexPhase.REFINEMENT:
            return self._execute_refinement(predicate)
        if phase is IndexPhase.CONSOLIDATION:
            return self._execute_consolidation(predicate)
        return self._execute_converged(predicate)

    # ------------------------------------------------------------------
    # Per-phase cost model (Section 3)
    # ------------------------------------------------------------------
    def predicted_cost(self, predicate: Predicate, delta: float = 0.0) -> CostBreakdown | None:
        """The current phase's cost formula evaluated at ``delta``.

        Side-effect free; returns ``None`` while the index is inactive (no
        structures exist before the first query initialises them).
        """
        phase = self.phase
        if phase is IndexPhase.CREATION:
            return self._creation_cost(predicate, delta)
        if phase is IndexPhase.REFINEMENT:
            return self._refinement_cost(predicate, delta)
        if phase is IndexPhase.CONSOLIDATION:
            return self._consolidation_cost(predicate, delta)
        if phase is IndexPhase.CONVERGED:
            return self._converged_cost(predicate)
        if phase is IndexPhase.MERGE:
            return self._merge_phase_cost(predicate, delta)
        return None

    # ------------------------------------------------------------------
    # Out-of-core support (streaming kernels)
    # ------------------------------------------------------------------
    def _scratch_allocate(self, n_rows: int, dtype) -> np.ndarray:
        """Writable construction array; pager-backed past the memory budget.

        With no budget attached to the column this is a plain ``np.empty``
        — the in-memory engine, unchanged.
        """
        budget = budget_of(self._column)
        if budget is not None:
            return budget.scratch.allocate(n_rows, dtype)
        return np.empty(int(n_rows), dtype=np.dtype(dtype))

    def _stream_chunk_rows(self) -> int | None:
        """Rows per streamed construction chunk, or ``None`` (single pass)."""
        budget = budget_of(self._column)
        if budget is None:
            return None
        return budget.chunk_rows(self._column.dtype)

    def _scratch_pool(self):
        """The column's shared scratch allocator, or ``None`` (no budget)."""
        budget = budget_of(self._column)
        return budget.scratch if budget is not None else None

    def _block_arena(self, block_size: int):
        """Spillable slab arena for linked bucket blocks (``None`` unbudgeted)."""
        pool = self._scratch_pool()
        if pool is None:
            return None
        from repro.storage.scratch import BlockArena

        return BlockArena(pool, int(block_size), self._column.dtype)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """Allocate the first-query structures (pivot, buckets, bounds...)."""
        raise NotImplementedError

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        raise NotImplementedError

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        raise NotImplementedError

    def _creation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        """Creation-phase cost at ``delta`` (state read-only)."""
        raise NotImplementedError

    def _refinement_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        """Refinement-phase cost at ``delta`` (state read-only)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Consolidation phase (shared by all four algorithms)
    # ------------------------------------------------------------------
    def _enter_consolidation(self, sorted_array: np.ndarray) -> None:
        """Start consolidating ``sorted_array`` into the cascade."""
        self._consolidator = ProgressiveConsolidator(sorted_array, fanout=self.fanout)
        self._advance_phase(IndexPhase.CONSOLIDATION)
        if self._consolidator.done:
            self._enter_converged()

    def _consolidation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        total_copy = max(1, self._consolidator.total_elements)
        alpha = self._consolidator.matching_fraction(predicate)
        return CostBreakdown(
            scan=alpha * self._cost_model.scan_time(n),
            lookup=self._cost_model.binary_search_time(n),
            indexing=delta * self._cost_model.consolidation_copy_time(total_copy),
        )

    def _execute_consolidation(self, predicate: Predicate) -> QueryResult:
        total_copy = max(1, self._consolidator.total_elements)
        copy_time = self._cost_model.consolidation_copy_time(total_copy)
        decision = self._decide(
            copy_time, lambda d: self._consolidation_cost(predicate, d)
        )
        element_budget = (
            int(np.ceil(decision.delta * total_copy)) if decision.delta > 0 else 0
        )
        copied = self._consolidator.step(element_budget) if element_budget > 0 else 0
        result = self._consolidator.query(predicate)
        self.last_stats.elements_indexed = copied
        if self._consolidator.done:
            self._enter_converged()
        return result

    # ------------------------------------------------------------------
    # Converged (shared)
    # ------------------------------------------------------------------
    def _enter_converged(self) -> None:
        self._cascade = self._consolidator.result()
        self._advance_phase(IndexPhase.CONVERGED)

    def _converged_cost(self, predicate: Predicate) -> CostBreakdown:
        # Estimate the match count from the predicate's selectivity rather
        # than executing the query: predicted_cost() is documented as
        # side-effect free AND cheap, so planners can call it per query.
        n = len(self._column)
        selectivity = predicate.selectivity(
            float(self._column.min()), float(self._column.max())
        )
        return self._converged_count_cost(int(selectivity * n))

    def _converged_count_cost(self, match_count: int) -> CostBreakdown:
        return CostBreakdown(
            scan=self._cost_model.scan_time(match_count),
            lookup=self._cost_model.tree_lookup_time(self._cascade.height),
            indexing=0.0,
        )

    def _execute_converged(self, predicate: Predicate) -> QueryResult:
        result = self._cascade.query(predicate)
        # The answer is in hand, so the recorded stats use the exact count.
        breakdown = self._converged_count_cost(result.count)
        self.last_stats.predicted_breakdown = breakdown
        self.last_stats.predicted_cost = breakdown.total
        return result

    # ------------------------------------------------------------------
    # Merge phase (mutable substrate; shared by all four algorithms)
    # ------------------------------------------------------------------
    #: A converged progressive index owns a sorted leaf array, so the
    #: buffered delta can be folded in and the budget-priced MERGE phase
    #: applies.
    can_fold = True

    def _merge_phase_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        """Converged answering plus ``delta`` of the remaining merge work."""
        base = self._converged_cost(predicate)
        return CostBreakdown(
            scan=base.scan,
            lookup=base.lookup,
            indexing=0.0,
            merge=delta * self._merge_full_work_time(),
        )

    def _fold_delta(self, inserts_sorted: np.ndarray, tombstones_sorted: np.ndarray) -> bool:
        """Merge the buffered delta into the leaf array, resample the cascade."""
        if self._cascade is None:
            return False
        merged = merge_sorted_with_delta(
            self._cascade.leaf_values, inserts_sorted, tombstones_sorted
        )
        self._cascade = CascadeTree(merged, fanout=self.fanout)
        return True

    def _fold_base_size(self) -> int:
        if self._cascade is None:
            return len(self._column)
        return int(self._cascade.leaf_values.size)

    # ------------------------------------------------------------------
    # Persistence (checkpointing; shared consolidation/converged stages)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = {"fanout": self.fanout}
        if self._cascade is not None:
            state["stage"] = "converged"
            state["leaf_values"] = np.array(self._cascade.leaf_values)
        elif self._consolidator is not None:
            state["stage"] = "consolidation"
            state["leaf_values"] = np.array(self._consolidator.leaf_values)
            state["copied"] = int(self._consolidator.copied_elements)
        else:
            state["stage"] = "construction"
            state.update(self._construction_state())
        return state

    def _load_family_state(self, state: dict) -> None:
        stage = state.get("stage")
        self.fanout = int(state.get("fanout", self.fanout))
        if stage == "converged":
            leaf = np.asarray(state["leaf_values"])
            self._cascade = CascadeTree(leaf, fanout=self.fanout)
            self._restore_final_array(leaf, sorted_ready=True)
        elif stage == "consolidation":
            leaf = np.asarray(state["leaf_values"])
            self._consolidator = ProgressiveConsolidator(leaf, fanout=self.fanout)
            # Replaying the copy counter is deterministic and costs exactly
            # the elements already paid for before the checkpoint.
            copied = int(state["copied"])
            if copied:
                self._consolidator.step(copied)
            self._restore_final_array(leaf, sorted_ready=True)
        else:
            self._load_construction_state(state)

    def _construction_state(self) -> dict:
        """Creation/refinement payload (subclass hook)."""
        raise NotImplementedError

    def _load_construction_state(self, state: dict) -> None:
        """Restore a creation/refinement payload (subclass hook)."""
        raise NotImplementedError

    def _restore_final_array(self, leaf: np.ndarray, sorted_ready: bool) -> None:
        """Re-wire the family's alias of the (sorted) index array.

        Called when restoring the shared consolidation/converged stages so
        family-level attributes (``_index_array``, ``_final_array``) point
        at the restored leaf array; the default covers families that keep
        no alias.
        """
