"""Budget-bounded progressive sorting of a contiguous array range.

:class:`ProgressiveSorter` is the work-horse shared by Progressive Quicksort
(refinement phase) and Progressive Bucketsort (per-bucket refinement).  Given
a writable array range and the value bounds of the data inside it, every call
to :meth:`refine` performs at most ``element_budget`` elements worth of
reorganisation and every call to :meth:`query` returns the exact aggregate
over the range no matter how far the reorganisation has progressed.

The reorganisation follows the paper's recursive quicksort refinement:

* ranges larger than the sort threshold are partitioned around the midpoint
  of their value bounds, a bounded number of elements per call;
* ranges that fit the threshold (the paper's "smaller than the L1 cache")
  are sorted outright;
* once both children of a node are sorted the node is pruned
  (:class:`~repro.progressive.pivot_tree.PivotTree` handles propagation).

Substitution note (documented in DESIGN.md): the paper performs the partition
with predicated in-place swaps.  When the element budget covers a whole node,
the partition is delegated to the construction-kernel layer — the
:func:`~repro.cracking.kernels.choose_kernel` decision tree picks the
branched / predicated / in-place two-sided kernel from the node size and the
pivot's estimated selectivity, exactly as the cracking side does.  A node
*larger* than the budget streams through a two-ended scratch buffer — the
creation-phase mechanics — and writes back when the node completes.
Per-query work remains bounded by the element budget and queries on a
mid-partition node scan the still intact original range, so answers stay
exact.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.query import Predicate, QueryResult, search_sorted_many
from repro.cracking.kernels import choose_kernel
from repro.progressive.pivot_tree import NodeState, PivotNode, PivotTree

#: Default number of elements below which a range is sorted outright.  This is
#: the analogue of the paper's "node smaller than the L1 cache" rule: 4096
#: 8-byte elements = 32 KiB, a typical L1 data cache size.
DEFAULT_SORT_THRESHOLD = 4096

#: Maximum pivot-tree depth before falling back to a direct sort.  Guards
#: against pathological value distributions (e.g. floating-point data whose
#: value bounds stop shrinking).
DEFAULT_MAX_DEPTH = 48


class ProgressiveSorter:
    """Progressively sorts ``array[start:end)`` with bounded work per call.

    Parameters
    ----------
    array:
        The writable index array; the sorter owns the ``[start, end)`` range.
    start, end:
        Half-open range covered by this sorter.
    value_low, value_high:
        Inclusive value bounds of the data in the range (used for pivot
        selection).
    sort_threshold:
        Ranges of at most this many elements are sorted directly.
    max_depth:
        Maximum pivot recursion depth before direct sorting.
    """

    def __init__(
        self,
        array: np.ndarray,
        start: int = 0,
        end: Optional[int] = None,
        value_low: Optional[float] = None,
        value_high: Optional[float] = None,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        self.array = array
        self.start = int(start)
        self.end = int(end if end is not None else array.size)
        if self.end < self.start:
            raise ValueError(f"invalid range [{start}, {end})")
        #: Optional :class:`~repro.storage.scratch.ScratchAllocator`; when
        #: set, mid-partition scratch buffers spill past the memory budget
        #: instead of holding O(node) anonymous RAM.
        self.scratch_allocator = None
        self.sort_threshold = max(1, int(sort_threshold))
        self.max_depth = max(1, int(max_depth))
        segment = array[self.start : self.end]
        if value_low is None:
            value_low = float(segment.min()) if segment.size else 0.0
        if value_high is None:
            value_high = float(segment.max()) if segment.size else 0.0
        root = PivotNode(self.start, self.end, value_low, value_high, depth=0)
        self.tree = PivotTree(root)
        self._worklist: Deque[PivotNode] = deque()
        self._prefix_sums: np.ndarray | None = None
        if not root.is_sorted:
            self._worklist.append(root)

    # ------------------------------------------------------------------
    # Alternative constructor used by Progressive Quicksort
    # ------------------------------------------------------------------
    @classmethod
    def from_partitioned(
        cls,
        array: np.ndarray,
        boundary: int,
        pivot: float,
        value_low: float,
        value_high: float,
        start: int = 0,
        end: Optional[int] = None,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> "ProgressiveSorter":
        """Build a sorter whose root has already been partitioned.

        The creation phase of Progressive Quicksort leaves the index array
        split at ``boundary``: values ``< pivot`` before it, values
        ``>= pivot`` after it.  The refinement phase continues from exactly
        that state.
        """
        sorter = cls(
            array,
            start=start,
            end=end,
            value_low=value_low,
            value_high=value_high,
            sort_threshold=sort_threshold,
            max_depth=max_depth,
        )
        root = sorter.tree.root
        if root.is_sorted:
            return sorter
        root.pivot = pivot
        sorter._worklist.clear()
        sorter._create_children(root, int(boundary))
        if not root.is_sorted and not root.children():
            # Degenerate split (everything on one missing side): fall back to
            # treating the root as an unpartitioned pending node.
            root.state = NodeState.PENDING
            sorter._worklist.append(root)
        return sorter

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_sorted(self) -> bool:
        """Whether the covered range is fully sorted."""
        return self.tree.is_sorted

    @property
    def height(self) -> int:
        """Height of the pivot tree (used by the lookup cost term)."""
        return self.tree.height

    @property
    def size(self) -> int:
        """Number of elements covered by the sorter."""
        return self.end - self.start

    def remaining_work(self) -> int:
        """Rough number of element moves still required to finish sorting."""
        remaining = 0
        for node in self._worklist:
            if node.state is NodeState.PARTITIONING:
                remaining += node.size - node.scanned
            else:
                remaining += node.size
        return remaining

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self, element_budget: int) -> int:
        """Perform up to ``element_budget`` elements of sorting work.

        Returns the number of elements actually processed (which may slightly
        exceed the budget when a threshold-sized node is sorted outright, and
        is smaller when the range runs out of work).
        """
        processed = 0
        budget = int(element_budget)
        while budget > 0 and self._worklist:
            node = self._worklist[0]
            if node.is_sorted:
                self._worklist.popleft()
                continue
            if self._should_sort_directly(node):
                self._direct_sort(node)
                self._worklist.popleft()
                processed += node.size
                budget -= node.size
                continue
            step = self._partition_step(node, budget)
            processed += step
            budget -= step
            if node.state is NodeState.PARTITIONED or node.is_sorted:
                self._worklist.popleft()
        return processed

    def finish(self) -> int:
        """Complete all remaining refinement outright with direct sorts.

        Used when a (pooled) budget grants the whole remaining phase in one
        go — the batch executor's front-loading case: sorting every pending
        range directly is equivalent to running the incremental partition
        passes to completion but does the work in one optimized pass per
        range.  A mid-partition node's original range is still intact (the
        incremental partition writes into a scratch buffer), so direct
        sorting is always safe.

        Returns the number of elements processed.
        """
        processed = 0
        while self._worklist:
            node = self._worklist.popleft()
            if node.is_sorted:
                continue
            processed += node.size
            self._direct_sort(node)
        return processed

    def prioritize(self, predicate: Predicate) -> None:
        """Move work overlapping ``predicate`` to the front of the worklist.

        Mirrors the paper's "we focus on refining parts of the index that are
        required for query processing"; the remaining order is untouched so
        neighbouring parts are processed next.
        """
        if not self._worklist:
            return
        preferred = []
        others = []
        for node in self._worklist:
            overlaps = predicate.low <= node.value_high and predicate.high >= node.value_low
            (preferred if overlaps else others).append(node)
        if preferred:
            self._worklist = deque(preferred + others)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, predicate: Predicate) -> QueryResult:
        """Exact aggregate of values matching ``predicate`` in the range."""
        result = QueryResult.empty()
        for node in self.tree.lookup_nodes(predicate.low, predicate.high):
            segment = self.array[node.start : node.end]
            if segment.size == 0:
                continue
            if node.is_sorted:
                lo = np.searchsorted(segment, predicate.low, side="left")
                hi = np.searchsorted(segment, predicate.high, side="right")
                if hi > lo:
                    matched = segment[lo:hi]
                    result += QueryResult(matched.sum(), int(matched.size))
            else:
                mask = predicate.mask(segment)
                result += QueryResult.from_masked(segment, mask)
        return result

    def search_many(self, lows, highs):
        """Vectorized batch of range queries over the covered range.

        Only available once the range is fully sorted (binary searches plus
        prefix-sum differences answer the whole batch without touching the
        data); returns ``None`` while refinement is still in progress, in
        which case callers fall back to per-query :meth:`query` dispatch.
        """
        if not self.is_sorted:
            return None
        segment = self.array[self.start : self.end]
        sums, counts, self._prefix_sums = search_sorted_many(
            segment, lows, highs, self._prefix_sums
        )
        return sums, counts

    def scanned_fraction(self, predicate: Predicate) -> float:
        """Fraction of the covered range a query would scan (the paper's α)."""
        if self.size == 0:
            return 0.0
        touched = 0
        for node in self.tree.lookup_nodes(predicate.low, predicate.high):
            if node.is_sorted:
                # Binary search: negligible scan cost, count matching range only.
                segment = self.array[node.start : node.end]
                lo = np.searchsorted(segment, predicate.low, side="left")
                hi = np.searchsorted(segment, predicate.high, side="right")
                touched += max(0, int(hi - lo))
            else:
                touched += node.size
        return min(1.0, touched / self.size)

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the pivot tree and worklist.

        The covered array range itself is persisted by the owning index;
        this state only captures the tree structure.  A node caught
        mid-partition (``PARTITIONING``) is recorded as ``PENDING``: its
        scratch buffer is process memory and the original array range is
        still intact by construction, so restarting its partition from
        scratch is always correct — the checkpoint trades at most one
        node's worth of progress for never having to persist half-filled
        scratch buffers.
        """
        nodes: list = []
        ids: dict = {}

        def visit(node: PivotNode) -> int:
            number = len(nodes)
            ids[id(node)] = number
            state = node.state
            if state is NodeState.PARTITIONING:
                state = NodeState.PENDING
            nodes.append(
                {
                    "start": node.start,
                    "end": node.end,
                    "value_low": node.value_low,
                    "value_high": node.value_high,
                    "pivot": node.pivot,
                    "depth": node.depth,
                    "state": state.value,
                    "left": None,
                    "right": None,
                }
            )
            if node.left is not None:
                nodes[number]["left"] = visit(node.left)
            if node.right is not None:
                nodes[number]["right"] = visit(node.right)
            return number

        visit(self.tree.root)
        worklist = [ids[id(node)] for node in self._worklist if id(node) in ids]
        return {
            "start": self.start,
            "end": self.end,
            "sort_threshold": self.sort_threshold,
            "max_depth": self.max_depth,
            "height": self.tree.height,
            "n_nodes": self.tree.n_nodes,
            "nodes": nodes,
            "worklist": worklist,
        }

    @classmethod
    def from_state(cls, array: np.ndarray, state: dict) -> "ProgressiveSorter":
        """Rebuild a sorter over ``array`` from :meth:`state_dict` output."""
        sorter = cls.__new__(cls)
        sorter.array = array
        sorter.scratch_allocator = None
        sorter.start = int(state["start"])
        sorter.end = int(state["end"])
        sorter.sort_threshold = int(state["sort_threshold"])
        sorter.max_depth = int(state["max_depth"])
        sorter._prefix_sums = None
        specs = state["nodes"]
        built: list = []
        for spec in specs:
            node = PivotNode(
                int(spec["start"]),
                int(spec["end"]),
                spec["value_low"],
                spec["value_high"],
                depth=int(spec["depth"]),
            )
            node.pivot = spec["pivot"]
            node.state = NodeState(spec["state"])
            built.append(node)
        for spec, node in zip(specs, built):
            if spec["left"] is not None:
                node.left = built[int(spec["left"])]
                node.left.parent = node
            if spec["right"] is not None:
                node.right = built[int(spec["right"])]
                node.right.parent = node
        sorter.tree = PivotTree(built[0])
        sorter.tree.height = int(state.get("height", 1))
        sorter.tree._n_nodes = int(state.get("n_nodes", len(built)))
        sorter._worklist = deque(built[int(i)] for i in state.get("worklist", []))
        return sorter

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _should_sort_directly(self, node: PivotNode) -> bool:
        if node.state is NodeState.PARTITIONING:
            return False
        if node.size <= self.sort_threshold:
            return True
        if node.depth >= self.max_depth:
            return True
        # Degenerate value bounds: all values (nearly) identical, a pivot
        # cannot split them any further.
        span = node.value_span
        if isinstance(node.value_low, float) or isinstance(node.value_high, float):
            return span <= 0
        return span <= 1

    def _direct_sort(self, node: PivotNode) -> None:
        segment = self.array[node.start : node.end]
        segment.sort()
        self.tree.mark_sorted(node)

    def _partition_step(self, node: PivotNode, budget: int) -> int:
        """Advance the two-ended partition of ``node`` by up to ``budget`` elements."""
        if node.state is NodeState.PENDING and budget >= node.size:
            # The whole node fits the budget: partition it in one pass with
            # the kernel the decision tree picks for this size/selectivity.
            span = node.value_span
            selectivity = 0.5
            if span > 0:
                selectivity = min(1.0, max(0.0, (node.pivot - node.value_low) / span))
            kernel = choose_kernel(node.size, selectivity)
            segment = self.array[node.start : node.end]
            boundary = node.start + kernel(segment, node.pivot)
            self._create_children(node, boundary)
            return node.size
        if node.state is NodeState.PENDING:
            if self.scratch_allocator is not None:
                node.scratch = self.scratch_allocator.allocate(node.size, self.array.dtype)
            else:
                node.scratch = np.empty(node.size, dtype=self.array.dtype)
            node.low_fill = 0
            node.high_fill = node.size
            node.scanned = 0
            node.state = NodeState.PARTITIONING
        take = min(budget, node.size - node.scanned)
        if take <= 0:
            return 0
        chunk_start = node.start + node.scanned
        chunk = self.array[chunk_start : chunk_start + take]
        mask = chunk < node.pivot
        lows = chunk[mask]
        highs = chunk[~mask]
        node.scratch[node.low_fill : node.low_fill + lows.size] = lows
        node.low_fill += lows.size
        node.scratch[node.high_fill - highs.size : node.high_fill] = highs
        node.high_fill -= highs.size
        node.scanned += take
        if node.scanned >= node.size:
            self.array[node.start : node.end] = node.scratch
            boundary = node.start + node.low_fill
            node.scratch = None
            self._create_children(node, boundary)
        return take

    def _create_children(self, node: PivotNode, boundary: int) -> None:
        """Create children after the partition of ``node`` completed."""
        boundary = min(max(boundary, node.start), node.end)
        node.state = NodeState.PARTITIONED
        left_size = boundary - node.start
        right_size = node.end - boundary
        if left_size == 0 or right_size == 0:
            # The pivot failed to split the range (skewed/duplicate data):
            # narrow the value bounds and retry on the same range so the
            # recursion still terminates.
            child_low = node.value_low if left_size > 0 else node.pivot
            child_high = node.pivot if left_size > 0 else node.value_high
            child = PivotNode(
                node.start, node.end, child_low, child_high, node.depth + 1, parent=node
            )
            if left_size > 0:
                node.left = child
            else:
                node.right = child
            self.tree.register_child(child)
            if child.is_sorted:
                self.tree.mark_sorted(child)
            else:
                self._worklist.append(child)
            return
        left = PivotNode(
            node.start, boundary, node.value_low, node.pivot, node.depth + 1, parent=node
        )
        right = PivotNode(
            boundary, node.end, node.pivot, node.value_high, node.depth + 1, parent=node
        )
        node.left = left
        node.right = right
        self.tree.register_child(left)
        self.tree.register_child(right)
        for child in (left, right):
            if child.is_sorted:
                self.tree.mark_sorted(child)
            else:
                self._worklist.append(child)
