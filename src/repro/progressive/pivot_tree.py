"""Binary tree of pivots over a partially sorted array range.

During the refinement phase of Progressive Quicksort the index array is
recursively partitioned around pivots.  The paper keeps "a binary tree of the
pivot points.  In the nodes of this tree, we keep track of the pivot points
and how far along the pivoting process we are.  To do an index lookup, we use
this binary tree to find the sections of the array that could potentially
match the query predicate and only scan those."

:class:`PivotNode` is one such node: it covers a half-open range
``[start, end)`` of the index array, knows the value bounds of the elements
inside that range, and carries the state of its (incremental) partition.
:class:`PivotTree` owns the root node, propagates "sorted" markers upwards
(pruning fully sorted subtrees, as the paper describes), and reports the tree
height used by the refinement cost model (``t_lookup = h * phi``).
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np


class NodeState(enum.Enum):
    """Partitioning state of a :class:`PivotNode`."""

    #: No work has started; the covered range is in its original order.
    PENDING = "pending"
    #: A partition around the pivot is in progress (scratch buffer active).
    PARTITIONING = "partitioning"
    #: The partition completed; children cover the two sides.
    PARTITIONED = "partitioned"
    #: The covered range is fully sorted.
    SORTED = "sorted"


class PivotNode:
    """A node of the pivot tree covering ``array[start:end)``.

    Parameters
    ----------
    start, end:
        Half-open element range within the index array.
    value_low, value_high:
        Known inclusive bounds of the values stored in the range.  The pivot
        is the midpoint of these bounds (the paper picks the average of the
        smallest and largest value), so child bounds halve at every level and
        recursion terminates even for heavily skewed data.
    depth:
        Depth of the node in the tree (root = 0).
    parent:
        Parent node, or ``None`` for the root.
    """

    __slots__ = (
        "start",
        "end",
        "value_low",
        "value_high",
        "pivot",
        "depth",
        "parent",
        "left",
        "right",
        "state",
        "scratch",
        "low_fill",
        "high_fill",
        "scanned",
    )

    def __init__(
        self,
        start: int,
        end: int,
        value_low: float,
        value_high: float,
        depth: int = 0,
        parent: Optional["PivotNode"] = None,
    ) -> None:
        self.start = int(start)
        self.end = int(end)
        self.value_low = value_low
        self.value_high = value_high
        self.pivot = value_low + (value_high - value_low) / 2.0
        self.depth = int(depth)
        self.parent = parent
        self.left: Optional[PivotNode] = None
        self.right: Optional[PivotNode] = None
        self.state = NodeState.SORTED if self.size <= 1 else NodeState.PENDING
        # Incremental partition bookkeeping (active only while PARTITIONING).
        self.scratch: Optional[np.ndarray] = None
        self.low_fill = 0
        self.high_fill = 0
        self.scanned = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of elements covered by the node."""
        return self.end - self.start

    @property
    def is_sorted(self) -> bool:
        """Whether the covered range is fully sorted."""
        return self.state is NodeState.SORTED

    @property
    def value_span(self) -> float:
        """Width of the value bounds; used to detect degenerate ranges."""
        return self.value_high - self.value_low

    def children(self) -> List["PivotNode"]:
        """Existing children (0, 1 or 2 nodes)."""
        return [child for child in (self.left, self.right) if child is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PivotNode([{self.start}, {self.end}), pivot={self.pivot}, "
            f"state={self.state.value})"
        )


class PivotTree:
    """The tree of pivot nodes over one contiguous array range."""

    def __init__(self, root: PivotNode) -> None:
        self.root = root
        self.height = 1
        self._n_nodes = 1

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ever created (monotone; pruning does not decrease it)."""
        return self._n_nodes

    @property
    def is_sorted(self) -> bool:
        """Whether the whole covered range is sorted."""
        return self.root.is_sorted

    def register_child(self, child: PivotNode) -> None:
        """Record a newly created child for height / node statistics."""
        self._n_nodes += 1
        self.height = max(self.height, child.depth + 1)

    # ------------------------------------------------------------------
    def mark_sorted(self, node: PivotNode) -> None:
        """Mark ``node`` sorted and propagate upwards, pruning sorted subtrees.

        "When two children of a node are sorted, the entire node itself is
        sorted, and we can prune the child nodes."  A missing child (empty
        partition side) counts as sorted.
        """
        node.state = NodeState.SORTED
        node.scratch = None
        current = node.parent
        while current is not None:
            left_sorted = current.left is None or current.left.is_sorted
            right_sorted = current.right is None or current.right.is_sorted
            if not (left_sorted and right_sorted):
                break
            current.state = NodeState.SORTED
            current.left = None
            current.right = None
            current.scratch = None
            current = current.parent

    # ------------------------------------------------------------------
    def collect_leaves(self) -> List[PivotNode]:
        """All current leaves (nodes without children), in array order."""
        leaves: List[PivotNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            kids = node.children()
            if not kids:
                leaves.append(node)
            else:
                stack.extend(reversed(kids))
        leaves.sort(key=lambda n: n.start)
        return leaves

    def lookup_nodes(self, low, high) -> List[PivotNode]:
        """Nodes whose ranges may contain values in ``[low, high]``.

        Descends through partitioned nodes using their pivots (left child
        holds values ``< pivot``, right child holds values ``>= pivot``) and
        stops at nodes that are sorted, pending or mid-partition — those are
        the sections the query has to scan.
        """
        relevant: List[PivotNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.size == 0:
                continue
            if node.state is NodeState.PARTITIONED:
                if node.right is not None and high >= node.pivot:
                    stack.append(node.right)
                if node.left is not None and low < node.pivot:
                    stack.append(node.left)
            else:
                relevant.append(node)
        relevant.sort(key=lambda n: n.start)
        return relevant
