"""Progressive Radixsort, least-significant digits first (Section 3.4).

Creation
    Every query moves ``delta * N`` elements of the base column into ``b``
    buckets keyed by the *least* significant ``log2(b)`` bits of the
    element's order-preserving radix key (see
    :class:`~repro.core.keys.RadixKeySpace`: the biased integer key for
    ``int64`` columns — equivalent to the paper's ``value - min`` — and the
    IEEE-754 monotone bit pattern for ``float64`` columns, so fractional
    parts order correctly).  These buckets are not a value-range
    partitioning, so they only accelerate point queries; range queries fall
    back to scanning the original column (the paper: "when α == ρ we scan
    the original column instead of using the buckets").

Refinement
    The elements are repeatedly moved to a fresh set of buckets keyed by the
    next ``log2(b)`` bits — a classic out-of-place LSD radix sort performed a
    bounded number of elements per query.  The number of passes is
    ``ceil(log2(max - min) / log2(b))`` in key space (the paper's formula).
    After the final pass the buckets are drained, in order, into the fully
    sorted index array.

Consolidation
    A B+-tree cascade is built over the sorted array, as with the other
    progressive indexes.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT
from repro.core.budget import IndexingBudget
from repro.core.calibration import DEFAULT_BLOCK_SIZE, CostConstants
from repro.core.index import BaseIndex
from repro.core.keys import RadixKeySpace
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult
from repro.progressive.batch_search import ConsolidatedBatchSearch
from repro.progressive.blocks import BucketSet
from repro.progressive.consolidation import ProgressiveConsolidator
from repro.storage.column import Column

#: Default number of radix buckets (paper: 64).
DEFAULT_BUCKET_COUNT = 64


class _RefinementStage(enum.Enum):
    """Sub-stage of the LSD refinement phase."""

    PASSES = "passes"   # moving elements between bucket generations
    MERGE = "merge"     # draining the final bucket generation into the array


class ProgressiveRadixsortLSD(ConsolidatedBatchSearch, BaseIndex):
    """Progressive Radixsort (LSD) index over a single column.

    Parameters
    ----------
    column:
        Column to index (``int64`` or ``float64``; radix digits come from the
        column's order-preserving :class:`~repro.core.keys.RadixKeySpace`).
    budget:
        Indexing-budget controller.
    constants:
        Cost-model constants.
    n_buckets:
        Radix fan-out ``b`` (a power of two).
    block_size:
        Elements per linked block (paper: ``sb``).
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    name = "PLSD"
    description = "Progressive Radixsort (LSD)"

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
        n_buckets: int = DEFAULT_BUCKET_COUNT,
        block_size: int = DEFAULT_BLOCK_SIZE,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        if n_buckets < 2 or (n_buckets & (n_buckets - 1)) != 0:
            raise ValueError(f"n_buckets must be a power of two >= 2, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.bits_per_pass = int(np.log2(self.n_buckets))
        self.block_size = int(block_size)
        self.fanout = int(fanout)
        self._cost_model.block_size = self.block_size
        self._phase = IndexPhase.INACTIVE
        # Radix bookkeeping ------------------------------------------------
        self._keyspace: RadixKeySpace | None = None
        self._total_passes = 1
        self._current_pass = 0
        # Creation state ----------------------------------------------------
        self._current_set: BucketSet | None = None
        self._elements_bucketed = 0
        # Refinement state --------------------------------------------------
        self._stage = _RefinementStage.PASSES
        self._next_set: BucketSet | None = None
        self._pass_bucket_cursor = 0
        self._pass_offset_cursor = 0
        self._pass_moved = 0
        self._final_array: np.ndarray | None = None
        self._merge_bucket_cursor = 0
        self._merge_offset_cursor = 0
        self._merge_position = 0
        # Consolidation state -----------------------------------------------
        self._consolidator: ProgressiveConsolidator | None = None
        self._cascade = None

    # ------------------------------------------------------------------
    @property
    def phase(self) -> IndexPhase:
        return self._phase

    @property
    def total_passes(self) -> int:
        """Total number of radix passes required for convergence."""
        return self._total_passes

    @property
    def current_pass(self) -> int:
        """Zero-based index of the pass currently in progress."""
        return self._current_pass

    def memory_footprint(self) -> int:
        total = 0
        for bucket_set in (self._current_set, self._next_set):
            if bucket_set is not None:
                total += bucket_set.memory_footprint()
        if self._final_array is not None:
            total += self._final_array.nbytes
        if self._cascade is not None:
            total += self._cascade.memory_footprint()
        return total

    # ------------------------------------------------------------------
    def _execute(self, predicate: Predicate) -> QueryResult:
        if self._phase is IndexPhase.INACTIVE:
            self._initialize()
        if self._phase is IndexPhase.CREATION:
            return self._execute_creation(predicate)
        if self._phase is IndexPhase.REFINEMENT:
            return self._execute_refinement(predicate)
        if self._phase is IndexPhase.CONSOLIDATION:
            return self._execute_consolidation(predicate)
        return self._execute_converged(predicate)

    # ------------------------------------------------------------------
    # Radix helpers
    # ------------------------------------------------------------------
    def _pass_bucket_ids(self, values: np.ndarray, pass_number: int) -> np.ndarray:
        return self._keyspace.digit(values, pass_number)

    def _point_bucket_id(self, value, pass_number: int) -> int:
        return self._keyspace.digit_scalar(value, pass_number)

    # ------------------------------------------------------------------
    # Creation phase (pass 0)
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        n = len(self._column)
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_pass
        )
        self._total_passes = self._keyspace.n_digits
        self._current_set = BucketSet(
            self.n_buckets, block_size=self.block_size, dtype=self._column.dtype
        )
        self._current_pass = 0
        self._elements_bucketed = 0
        self._budget.register_scan_time(self._cost_model.scan_time(n))
        self._phase = IndexPhase.CREATION

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        rho = self._elements_bucketed / n
        scan_time = self._cost_model.scan_time(n)
        bucket_scan_time = self._cost_model.bucket_scan_time(n)
        bucket_write_time = self._cost_model.bucket_write_time(n)

        if predicate.is_point:
            bucket = self._current_set[self._point_bucket_id(predicate.low, 0)]
            alpha = len(bucket) / n if n else 0.0
            base_cost = (1.0 - rho) * scan_time + alpha * bucket_scan_time
        else:
            # Range queries cannot use the LSD buckets: fall back to a full
            # column scan (alpha == rho case in the paper).
            alpha = rho
            base_cost = scan_time

        delta = self._budget.next_delta(bucket_write_time, base_cost)
        delta = min(delta, 1.0 - rho)
        to_bucket = min(n - self._elements_bucketed, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_bucket > 0:
            start = self._elements_bucketed
            chunk = self._column.data[start : start + to_bucket]
            self._current_set.scatter(chunk, self._pass_bucket_ids(chunk, 0))
            self._elements_bucketed += chunk.size

        if predicate.is_point:
            bucket = self._current_set[self._point_bucket_id(predicate.low, 0)]
            result = bucket.scan(predicate.low, predicate.high)
            result += self._scan_column(predicate, start=self._elements_bucketed)
            predicted_scan = alpha * bucket_scan_time + max(0.0, 1.0 - rho - delta) * scan_time
        else:
            result = self._scan_column(predicate)
            predicted_scan = scan_time

        self.last_stats.delta = delta
        self.last_stats.elements_indexed = to_bucket
        self.last_stats.predicted_cost = predicted_scan + delta * bucket_write_time

        if self._elements_bucketed >= n:
            self._enter_refinement()
        return result

    # ------------------------------------------------------------------
    # Refinement phase (passes 1 .. total_passes-1, then the merge)
    # ------------------------------------------------------------------
    def _enter_refinement(self) -> None:
        self._phase = IndexPhase.REFINEMENT
        if self._total_passes == 1:
            self._start_merge()
        else:
            self._start_pass(1)

    def _start_pass(self, pass_number: int) -> None:
        self._current_pass = pass_number
        self._stage = _RefinementStage.PASSES
        self._next_set = BucketSet(
            self.n_buckets, block_size=self.block_size, dtype=self._column.dtype
        )
        self._pass_bucket_cursor = 0
        self._pass_offset_cursor = 0
        self._pass_moved = 0

    def _start_merge(self) -> None:
        self._stage = _RefinementStage.MERGE
        self._final_array = np.empty(len(self._column), dtype=self._column.dtype)
        self._merge_bucket_cursor = 0
        self._merge_offset_cursor = 0
        self._merge_position = 0

    def _advance_pass(self, element_budget: int) -> int:
        """Move up to ``element_budget`` elements into the next bucket set."""
        moved = 0
        budget = int(element_budget)
        n = len(self._column)
        while budget > 0 and self._pass_moved < n:
            bucket = self._current_set[self._pass_bucket_cursor]
            remaining = len(bucket) - self._pass_offset_cursor
            if remaining <= 0:
                self._pass_bucket_cursor += 1
                self._pass_offset_cursor = 0
                continue
            take = min(budget, remaining)
            chunk = bucket.slice_array(self._pass_offset_cursor, take)
            ids = self._pass_bucket_ids(chunk, self._current_pass)
            self._next_set.scatter(chunk, ids)
            self._pass_offset_cursor += chunk.size
            self._pass_moved += chunk.size
            moved += chunk.size
            budget -= chunk.size
        if self._pass_moved >= n:
            self._current_set.clear()
            self._current_set = self._next_set
            self._next_set = None
            if self._current_pass + 1 < self._total_passes:
                self._start_pass(self._current_pass + 1)
            else:
                self._start_merge()
        return moved

    def _advance_merge(self, element_budget: int) -> int:
        """Drain the final bucket generation into the sorted index array."""
        moved = 0
        budget = int(element_budget)
        n = len(self._column)
        while budget > 0 and self._merge_position < n:
            bucket = self._current_set[self._merge_bucket_cursor]
            remaining = len(bucket) - self._merge_offset_cursor
            if remaining <= 0:
                self._merge_bucket_cursor += 1
                self._merge_offset_cursor = 0
                continue
            take = min(budget, remaining)
            copied = bucket.drain_into(
                self._final_array, self._merge_position, self._merge_offset_cursor, take
            )
            self._merge_offset_cursor += copied
            self._merge_position += copied
            moved += copied
            budget -= copied
        if self._merge_position >= n:
            self._current_set.clear()
            self._current_set = None
            self._enter_consolidation()
        return moved

    def _point_query_during_refinement(self, predicate: Predicate) -> QueryResult:
        """Answer a point query from the (partially migrated) bucket sets."""
        result = QueryResult.empty()
        if self._stage is _RefinementStage.PASSES:
            old_pass = self._current_pass - 1
            old_id = self._point_bucket_id(predicate.low, old_pass)
            new_id = self._point_bucket_id(predicate.low, self._current_pass)
            # Elements already moved live in the new set.
            result += self._next_set[new_id].scan(predicate.low, predicate.high)
            # Elements not yet moved live in the old set, beyond the cursor.
            if old_id > self._pass_bucket_cursor:
                result += self._current_set[old_id].scan(predicate.low, predicate.high)
            elif old_id == self._pass_bucket_cursor:
                bucket = self._current_set[old_id]
                remaining = bucket.slice_array(
                    self._pass_offset_cursor, len(bucket) - self._pass_offset_cursor
                )
                result += QueryResult.from_masked(remaining, predicate.mask(remaining))
        else:  # MERGE stage
            last_pass = self._total_passes - 1
            bucket_id = self._point_bucket_id(predicate.low, last_pass)
            # Already merged elements live in the sorted prefix of the array.
            prefix = self._final_array[: self._merge_position]
            result += QueryResult.from_masked(prefix, predicate.mask(prefix))
            if bucket_id > self._merge_bucket_cursor:
                result += self._current_set[bucket_id].scan(predicate.low, predicate.high)
            elif bucket_id == self._merge_bucket_cursor:
                bucket = self._current_set[bucket_id]
                remaining = bucket.slice_array(
                    self._merge_offset_cursor, len(bucket) - self._merge_offset_cursor
                )
                result += QueryResult.from_masked(remaining, predicate.mask(remaining))
        return result

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        scan_time = self._cost_model.scan_time(n)
        bucket_scan_time = self._cost_model.bucket_scan_time(n)
        if self._stage is _RefinementStage.PASSES:
            full_work = self._cost_model.bucket_write_time(n)
        else:
            full_work = self._cost_model.write_time(n)

        if predicate.is_point:
            alpha = 1.0 / self.n_buckets
            base_cost = alpha * bucket_scan_time
        else:
            alpha = 1.0
            base_cost = scan_time

        delta = self._budget.next_delta(full_work, base_cost)
        element_budget = int(np.ceil(delta * n)) if delta > 0 else 0

        moved = 0
        if element_budget > 0:
            if self._stage is _RefinementStage.PASSES:
                moved = self._advance_pass(element_budget)
            else:
                moved = self._advance_merge(element_budget)

        # Answer the query.  The phase may have advanced to consolidation
        # while performing the work; re-dispatch in that case.
        if self._phase is not IndexPhase.REFINEMENT:
            if self._phase is IndexPhase.CONSOLIDATION:
                result = self._consolidator.query(predicate)
            else:
                result = self._cascade.query(predicate)
        elif predicate.is_point:
            result = self._point_query_during_refinement(predicate)
        else:
            result = self._scan_column(predicate)

        self.last_stats.delta = delta
        self.last_stats.elements_indexed = moved
        if predicate.is_point:
            self.last_stats.predicted_cost = alpha * bucket_scan_time + delta * full_work
        else:
            self.last_stats.predicted_cost = scan_time + delta * full_work
        return result

    # ------------------------------------------------------------------
    # Consolidation phase
    # ------------------------------------------------------------------
    def _enter_consolidation(self) -> None:
        self._consolidator = ProgressiveConsolidator(self._final_array, fanout=self.fanout)
        self._phase = IndexPhase.CONSOLIDATION
        if self._consolidator.done:
            self._enter_converged()

    def _execute_consolidation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        scan_time = self._cost_model.scan_time(n)
        total_copy = max(1, self._consolidator.total_elements)
        copy_time = self._cost_model.consolidation_copy_time(total_copy)
        alpha = self._consolidator.matching_fraction(predicate)
        lookup_time = self._cost_model.binary_search_time(n)
        base_cost = lookup_time + alpha * scan_time
        delta = self._budget.next_delta(copy_time, base_cost)
        element_budget = int(np.ceil(delta * total_copy)) if delta > 0 else 0

        copied = self._consolidator.step(element_budget) if element_budget > 0 else 0
        result = self._consolidator.query(predicate)

        self.last_stats.delta = delta
        self.last_stats.elements_indexed = copied
        self.last_stats.predicted_cost = lookup_time + alpha * scan_time + delta * copy_time

        if self._consolidator.done:
            self._enter_converged()
        return result

    def _enter_converged(self) -> None:
        self._cascade = self._consolidator.result()
        self._phase = IndexPhase.CONVERGED

    def _execute_converged(self, predicate: Predicate) -> QueryResult:
        result = self._cascade.query(predicate)
        lookup_time = self._cost_model.tree_lookup_time(self._cascade.height)
        self.last_stats.predicted_cost = lookup_time + self._cost_model.scan_time(result.count)
        return result
