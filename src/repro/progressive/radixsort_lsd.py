"""Progressive Radixsort, least-significant digits first (Section 3.4).

Creation
    Every query moves ``delta * N`` elements of the base column into ``b``
    buckets keyed by the *least* significant ``log2(b)`` bits of the
    element's order-preserving radix key (see
    :class:`~repro.core.keys.RadixKeySpace`: the biased integer key for
    ``int64`` columns — equivalent to the paper's ``value - min`` — and the
    IEEE-754 monotone bit pattern for ``float64`` columns, so fractional
    parts order correctly).  These buckets are not a value-range
    partitioning, so they only accelerate point queries; range queries fall
    back to scanning the original column (the paper: "when α == ρ we scan
    the original column instead of using the buckets").

Refinement
    The elements are repeatedly moved to a fresh set of buckets keyed by the
    next ``log2(b)`` bits — a classic out-of-place LSD radix sort performed a
    bounded number of elements per query.  The number of passes is
    ``ceil(log2(max - min) / log2(b))`` in key space (the paper's formula).
    After the final pass the buckets are drained, in order, into the fully
    sorted index array.

Consolidation
    A B+-tree cascade is built over the sorted array by the shared
    :class:`~repro.progressive.base.ProgressiveIndexBase` driver.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT
from repro.core.calibration import DEFAULT_BLOCK_SIZE, CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.keys import RadixKeySpace
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.progressive.base import ProgressiveIndexBase
from repro.progressive.batch_search import ConsolidatedBatchSearch
from repro.progressive.blocks import BucketSet
from repro.storage.column import Column

#: Default number of radix buckets (paper: 64).
DEFAULT_BUCKET_COUNT = 64


class _RefinementStage(enum.Enum):
    """Sub-stage of the LSD refinement phase."""

    PASSES = "passes"   # moving elements between bucket generations
    MERGE = "merge"     # draining the final bucket generation into the array


class ProgressiveRadixsortLSD(ConsolidatedBatchSearch, ProgressiveIndexBase):
    """Progressive Radixsort (LSD) index over a single column.

    Parameters
    ----------
    column:
        Column to index (``int64`` or ``float64``; radix digits come from the
        column's order-preserving :class:`~repro.core.keys.RadixKeySpace`).
    budget:
        Budget policy.
    constants:
        Cost-model constants.
    n_buckets:
        Radix fan-out ``b`` (a power of two).
    block_size:
        Elements per linked block (paper: ``sb``).
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    name = "PLSD"
    description = "Progressive Radixsort (LSD)"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        n_buckets: int = DEFAULT_BUCKET_COUNT,
        block_size: int = DEFAULT_BLOCK_SIZE,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants, fanout=fanout)
        if n_buckets < 2 or (n_buckets & (n_buckets - 1)) != 0:
            raise ValueError(f"n_buckets must be a power of two >= 2, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.bits_per_pass = int(np.log2(self.n_buckets))
        self.block_size = int(block_size)
        self._cost_model.block_size = self.block_size
        # Radix bookkeeping ------------------------------------------------
        self._keyspace: RadixKeySpace | None = None
        self._total_passes = 1
        self._current_pass = 0
        # Creation state ----------------------------------------------------
        self._current_set: BucketSet | None = None
        self._elements_bucketed = 0
        # Refinement state --------------------------------------------------
        self._stage = _RefinementStage.PASSES
        self._next_set: BucketSet | None = None
        self._pass_bucket_cursor = 0
        self._pass_offset_cursor = 0
        self._pass_moved = 0
        self._final_array: np.ndarray | None = None
        self._merge_bucket_cursor = 0
        self._merge_offset_cursor = 0
        self._merge_position = 0

    # ------------------------------------------------------------------
    @property
    def total_passes(self) -> int:
        """Total number of radix passes required for convergence."""
        return self._total_passes

    @property
    def current_pass(self) -> int:
        """Zero-based index of the pass currently in progress."""
        return self._current_pass

    def memory_footprint(self) -> int:
        total = 0
        for bucket_set in (self._current_set, self._next_set):
            if bucket_set is not None:
                total += bucket_set.memory_footprint()
        if self._final_array is not None:
            total += self._final_array.nbytes
        if self._cascade is not None:
            total += self._cascade.memory_footprint()
        return total

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _construction_state(self) -> dict:
        state = {
            "initialized": self._keyspace is not None,
            "elements_bucketed": int(self._elements_bucketed),
            "current_pass": int(self._current_pass),
            "stage": self._stage.value,
        }
        if self._current_set is not None:
            state["current_set"] = self._current_set.state_dict()
        if self._stage is _RefinementStage.PASSES:
            if self._next_set is not None:
                state["next_set"] = self._next_set.state_dict()
            state["pass_bucket_cursor"] = int(self._pass_bucket_cursor)
            state["pass_offset_cursor"] = int(self._pass_offset_cursor)
            state["pass_moved"] = int(self._pass_moved)
        else:
            if self._final_array is not None:
                state["final_array"] = np.array(self._final_array)
            state["merge_bucket_cursor"] = int(self._merge_bucket_cursor)
            state["merge_offset_cursor"] = int(self._merge_offset_cursor)
            state["merge_position"] = int(self._merge_position)
        return state

    def _load_construction_state(self, state: dict) -> None:
        if not state.get("initialized"):
            return
        # The keyspace is a pure function of the pinned snapshot's bounds.
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_pass
        )
        self._total_passes = self._keyspace.n_digits
        self._elements_bucketed = int(state["elements_bucketed"])
        self._current_pass = int(state["current_pass"])
        self._stage = _RefinementStage(state["stage"])
        if "current_set" in state:
            self._current_set = BucketSet.from_state(state["current_set"])
        if self._stage is _RefinementStage.PASSES:
            if "next_set" in state:
                self._next_set = BucketSet.from_state(state["next_set"])
            self._pass_bucket_cursor = int(state.get("pass_bucket_cursor", 0))
            self._pass_offset_cursor = int(state.get("pass_offset_cursor", 0))
            self._pass_moved = int(state.get("pass_moved", 0))
        else:
            if "final_array" in state:
                self._final_array = np.asarray(state["final_array"])
            self._merge_bucket_cursor = int(state.get("merge_bucket_cursor", 0))
            self._merge_offset_cursor = int(state.get("merge_offset_cursor", 0))
            self._merge_position = int(state.get("merge_position", 0))

    def _restore_final_array(self, leaf: np.ndarray, sorted_ready: bool) -> None:
        self._final_array = leaf
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_pass
        )
        self._total_passes = self._keyspace.n_digits

    # ------------------------------------------------------------------
    # Radix helpers
    # ------------------------------------------------------------------
    def _pass_bucket_ids(self, values: np.ndarray, pass_number: int) -> np.ndarray:
        return self._keyspace.digit(values, pass_number)

    def _point_bucket_id(self, value, pass_number: int) -> int:
        return self._keyspace.digit_scalar(value, pass_number)

    # ------------------------------------------------------------------
    # Creation phase (pass 0)
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        self._keyspace = RadixKeySpace(
            self._column.min(), self._column.max(), self._column.dtype, self.bits_per_pass
        )
        self._total_passes = self._keyspace.n_digits
        self._current_set = BucketSet(
            self.n_buckets,
            block_size=self.block_size,
            dtype=self._column.dtype,
            arena=self._block_arena(self.block_size),
        )
        self._current_pass = 0
        self._elements_bucketed = 0

    def _creation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        rho = self._elements_bucketed / n
        scan_time = self._cost_model.scan_time(n)
        if predicate.is_point:
            bucket = self._current_set[self._point_bucket_id(predicate.low, 0)]
            alpha = len(bucket) / n if n else 0.0
            scan = alpha * self._cost_model.bucket_scan_time(n)
            scan += max(0.0, 1.0 - rho - delta) * scan_time
        else:
            # Range queries cannot use the LSD buckets: fall back to a full
            # column scan (alpha == rho case in the paper).
            scan = scan_time
        return CostBreakdown(
            scan=scan,
            lookup=0.0,
            indexing=delta * self._cost_model.bucket_write_time(n),
        )

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        rho = self._elements_bucketed / n
        bucket_write_time = self._cost_model.bucket_write_time(n)
        decision = self._decide(
            bucket_write_time,
            lambda d: self._creation_cost(predicate, d),
            max_delta=1.0 - rho,
        )
        delta = decision.delta
        to_bucket = min(n - self._elements_bucketed, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_bucket > 0:
            start = self._elements_bucketed
            stop = start + to_bucket
            step = self._stream_chunk_rows() or to_bucket
            for offset in range(start, stop, step):
                chunk = np.asarray(self._column.data[offset : min(stop, offset + step)])
                self._current_set.scatter(chunk, self._pass_bucket_ids(chunk, 0))
                self._elements_bucketed += chunk.size

        if predicate.is_point:
            bucket = self._current_set[self._point_bucket_id(predicate.low, 0)]
            result = bucket.scan(predicate.low, predicate.high)
            result += self._scan_column(predicate, start=self._elements_bucketed)
        else:
            result = self._scan_column(predicate)

        self.last_stats.elements_indexed = to_bucket

        if self._elements_bucketed >= n:
            self._enter_refinement()
        return result

    # ------------------------------------------------------------------
    # Refinement phase (passes 1 .. total_passes-1, then the merge)
    # ------------------------------------------------------------------
    def _enter_refinement(self) -> None:
        self._advance_phase(IndexPhase.REFINEMENT)
        if self._total_passes == 1:
            self._start_merge()
        else:
            self._start_pass(1)

    def _start_pass(self, pass_number: int) -> None:
        self._current_pass = pass_number
        self._stage = _RefinementStage.PASSES
        self._next_set = BucketSet(
            self.n_buckets,
            block_size=self.block_size,
            dtype=self._column.dtype,
            arena=self._block_arena(self.block_size),
        )
        self._pass_bucket_cursor = 0
        self._pass_offset_cursor = 0
        self._pass_moved = 0

    def _start_merge(self) -> None:
        self._stage = _RefinementStage.MERGE
        self._final_array = self._scratch_allocate(len(self._column), self._column.dtype)
        self._merge_bucket_cursor = 0
        self._merge_offset_cursor = 0
        self._merge_position = 0

    def _advance_pass(self, element_budget: int) -> int:
        """Move up to ``element_budget`` elements into the next bucket set."""
        moved = 0
        budget = int(element_budget)
        n = len(self._column)
        while budget > 0 and self._pass_moved < n:
            bucket = self._current_set[self._pass_bucket_cursor]
            remaining = len(bucket) - self._pass_offset_cursor
            if remaining <= 0:
                self._pass_bucket_cursor += 1
                self._pass_offset_cursor = 0
                continue
            take = min(budget, remaining)
            chunk = bucket.slice_array(self._pass_offset_cursor, take)
            ids = self._pass_bucket_ids(chunk, self._current_pass)
            self._next_set.scatter(chunk, ids)
            self._pass_offset_cursor += chunk.size
            self._pass_moved += chunk.size
            moved += chunk.size
            budget -= chunk.size
        if self._pass_moved >= n:
            self._current_set.clear()
            self._current_set = self._next_set
            self._next_set = None
            if self._current_pass + 1 < self._total_passes:
                self._start_pass(self._current_pass + 1)
            else:
                self._start_merge()
        return moved

    def _advance_merge(self, element_budget: int) -> int:
        """Drain the final bucket generation into the sorted index array."""
        moved = 0
        budget = int(element_budget)
        n = len(self._column)
        while budget > 0 and self._merge_position < n:
            bucket = self._current_set[self._merge_bucket_cursor]
            remaining = len(bucket) - self._merge_offset_cursor
            if remaining <= 0:
                self._merge_bucket_cursor += 1
                self._merge_offset_cursor = 0
                continue
            take = min(budget, remaining)
            copied = bucket.drain_into(
                self._final_array, self._merge_position, self._merge_offset_cursor, take
            )
            self._merge_offset_cursor += copied
            self._merge_position += copied
            moved += copied
            budget -= copied
        if self._merge_position >= n:
            self._current_set.clear()
            self._current_set = None
            self._enter_consolidation(self._final_array)
        return moved

    def _point_query_during_refinement(self, predicate: Predicate) -> QueryResult:
        """Answer a point query from the (partially migrated) bucket sets."""
        result = QueryResult.empty()
        if self._stage is _RefinementStage.PASSES:
            old_pass = self._current_pass - 1
            old_id = self._point_bucket_id(predicate.low, old_pass)
            new_id = self._point_bucket_id(predicate.low, self._current_pass)
            # Elements already moved live in the new set.
            result += self._next_set[new_id].scan(predicate.low, predicate.high)
            # Elements not yet moved live in the old set, beyond the cursor.
            if old_id > self._pass_bucket_cursor:
                result += self._current_set[old_id].scan(predicate.low, predicate.high)
            elif old_id == self._pass_bucket_cursor:
                bucket = self._current_set[old_id]
                remaining = bucket.slice_array(
                    self._pass_offset_cursor, len(bucket) - self._pass_offset_cursor
                )
                result += QueryResult.from_masked(remaining, predicate.mask(remaining))
        else:  # MERGE stage
            last_pass = self._total_passes - 1
            bucket_id = self._point_bucket_id(predicate.low, last_pass)
            # Already merged elements live in the sorted prefix of the array.
            prefix = self._final_array[: self._merge_position]
            result += QueryResult.from_masked(prefix, predicate.mask(prefix))
            if bucket_id > self._merge_bucket_cursor:
                result += self._current_set[bucket_id].scan(predicate.low, predicate.high)
            elif bucket_id == self._merge_bucket_cursor:
                bucket = self._current_set[bucket_id]
                remaining = bucket.slice_array(
                    self._merge_offset_cursor, len(bucket) - self._merge_offset_cursor
                )
                result += QueryResult.from_masked(remaining, predicate.mask(remaining))
        return result

    def _refinement_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        if self._stage is _RefinementStage.PASSES:
            full_work = self._cost_model.bucket_write_time(n)
        else:
            full_work = self._cost_model.write_time(n)
        if predicate.is_point:
            alpha = 1.0 / self.n_buckets
            scan = alpha * self._cost_model.bucket_scan_time(n)
        else:
            scan = self._cost_model.scan_time(n)
        return CostBreakdown(scan=scan, lookup=0.0, indexing=delta * full_work)

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        if self._stage is _RefinementStage.PASSES:
            full_work = self._cost_model.bucket_write_time(n)
        else:
            full_work = self._cost_model.write_time(n)
        decision = self._decide(
            full_work, lambda d: self._refinement_cost(predicate, d)
        )
        delta = decision.delta
        element_budget = int(np.ceil(delta * n)) if delta > 0 else 0

        moved = 0
        if element_budget > 0:
            if self._stage is _RefinementStage.PASSES:
                moved = self._advance_pass(element_budget)
            else:
                moved = self._advance_merge(element_budget)

        # Answer the query.  The phase may have advanced to consolidation
        # while performing the work; re-dispatch in that case.
        if self.phase is not IndexPhase.REFINEMENT:
            if self.phase is IndexPhase.CONSOLIDATION:
                result = self._consolidator.query(predicate)
            else:
                result = self._cascade.query(predicate)
        elif predicate.is_point:
            result = self._point_query_during_refinement(predicate)
        else:
            result = self._scan_column(predicate)

        self.last_stats.elements_indexed = moved
        return result
