"""Progressive construction of the B+-tree cascade (consolidation phase).

Once a progressive index owns a fully sorted array, the consolidation phase
"progressively construct[s] a B+-tree from it" by copying every β-th element
of a level into the level above, a bounded number of elements per query.
Until the cascade is complete, queries are answered with a binary search on
the sorted array (the paper: ``t_lookup = log2(n) * phi``); afterwards the
finished :class:`~repro.btree.cascade.CascadeTree` answers them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT, CascadeTree
from repro.core.query import Predicate, QueryResult


class ProgressiveConsolidator:
    """Builds a :class:`CascadeTree` over ``sorted_array`` with bounded work.

    Parameters
    ----------
    sorted_array:
        The fully sorted index array produced by the refinement phase.
    fanout:
        β — sampling factor between consecutive levels.
    """

    def __init__(self, sorted_array: np.ndarray, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.leaf_values = np.asarray(sorted_array)
        self.fanout = int(fanout)
        self._level_sizes: List[int] = []
        size = self.leaf_values.size
        while size > self.fanout:
            size = (size + self.fanout - 1) // self.fanout
            self._level_sizes.append(size)
        self.levels: List[np.ndarray] = []
        self._current_level = 0
        self._current_position = 0
        self._copied = 0
        self._tree: CascadeTree | None = None
        if not self._level_sizes:
            self._finish()

    # ------------------------------------------------------------------
    @property
    def total_elements(self) -> int:
        """Total number of elements that will be copied into upper levels."""
        return sum(self._level_sizes)

    @property
    def copied_elements(self) -> int:
        """Number of elements copied so far."""
        return self._copied

    @property
    def remaining_elements(self) -> int:
        """Number of elements still to copy."""
        return self.total_elements - self._copied

    @property
    def done(self) -> bool:
        """Whether the cascade is complete."""
        return self._tree is not None

    @property
    def progress(self) -> float:
        """Fraction of the consolidation work completed, in ``[0, 1]``."""
        total = self.total_elements
        if total == 0:
            return 1.0
        return self._copied / total

    # ------------------------------------------------------------------
    def step(self, element_budget: int) -> int:
        """Copy up to ``element_budget`` elements into the upper levels."""
        if self.done:
            return 0
        copied = 0
        budget = int(element_budget)
        while budget > 0 and self._current_level < len(self._level_sizes):
            target_size = self._level_sizes[self._current_level]
            source = (
                self.leaf_values
                if self._current_level == 0
                else self.levels[self._current_level - 1]
            )
            if self._current_position == 0:
                self.levels.append(np.empty(target_size, dtype=self.leaf_values.dtype))
            target = self.levels[self._current_level]
            take = min(budget, target_size - self._current_position)
            start = self._current_position
            stop = start + take
            target[start:stop] = source[start * self.fanout : stop * self.fanout : self.fanout]
            self._current_position = stop
            self._copied += take
            copied += take
            budget -= take
            if self._current_position >= target_size:
                self._current_level += 1
                self._current_position = 0
        if self._current_level >= len(self._level_sizes):
            self._finish()
        return copied

    def _finish(self) -> None:
        self._tree = CascadeTree(self.leaf_values, fanout=self.fanout, levels=self.levels)

    def result(self) -> CascadeTree:
        """Return the finished cascade tree (builds it eagerly if needed)."""
        if not self.done:
            self.step(self.remaining_elements)
        return self._tree

    # ------------------------------------------------------------------
    def query(self, predicate: Predicate) -> QueryResult:
        """Answer ``predicate`` against the (partially consolidated) index.

        Uses the finished cascade when available, otherwise a binary search
        on the sorted leaf array.
        """
        if self.done:
            return self._tree.query(predicate)
        values = self.leaf_values
        lo = int(np.searchsorted(values, predicate.low, side="left"))
        hi = int(np.searchsorted(values, predicate.high, side="right"))
        if hi <= lo:
            return QueryResult.empty()
        segment = values[lo:hi]
        return QueryResult(segment.sum(), int(segment.size))

    def matching_fraction(self, predicate: Predicate) -> float:
        """Fraction of the leaf array matched by ``predicate`` (the paper's α)."""
        if self.leaf_values.size == 0:
            return 0.0
        lo = int(np.searchsorted(self.leaf_values, predicate.low, side="left"))
        hi = int(np.searchsorted(self.leaf_values, predicate.high, side="right"))
        return max(0, hi - lo) / self.leaf_values.size
