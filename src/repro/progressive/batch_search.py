"""Shared batched-answering mixin for cascade-consolidating indexes.

The bucket-based progressive indexes (Radixsort LSD/MSD, Bucketsort) all
converge the same way: a fully sorted ``_final_array`` appears at the start
of the consolidation phase and a :class:`~repro.btree.cascade.CascadeTree`
is built over it.  :class:`ConsolidatedBatchSearch` gives them one shared
``search_many`` implementation over that structure instead of three copies.

The sortedness of ``_final_array`` is *verified* (once, cached) rather than
assumed: if the construction left the array unsorted — e.g. the known
limitation of LSD radix over float columns, whose fractional parts the
integer radix passes cannot distinguish — vectorized binary search would
silently return garbage, so the mixin returns ``None`` and the batch
executor falls back to per-query dispatch.  Note the guard only prevents
the batch path from inventing *additional* wrong answers; an index whose
sequential answers are themselves phase-dependent and wrong (the PLSD
float defect recorded in ROADMAP's open items) cannot be made
batch-equivalent by any executor, because batching legitimately reorders
construction across the batch.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase import IndexPhase
from repro.core.query import search_sorted_many


class ConsolidatedBatchSearch:
    """Mixin implementing ``search_many`` via ``_cascade`` / ``_final_array``.

    Host classes provide ``_cascade`` (set when converged), ``_final_array``
    (the sorted array, available from consolidation onwards) and ``phase``.
    """

    _batch_prefix: np.ndarray | None = None
    _final_array_sorted: bool | None = None

    def search_many(self, lows, highs):
        """Vectorized batch answering once a fully sorted array exists.

        Available from the consolidation phase onwards; returns ``None`` in
        earlier phases — or if the final array fails the (cached)
        sortedness verification — in which case per-query dispatch is
        required.
        """
        if self._cascade is not None:
            return self._cascade.search_many(lows, highs)
        if self.phase is IndexPhase.CONSOLIDATION and self._final_array is not None:
            if self._final_array_sorted is None:
                self._final_array_sorted = bool(
                    np.all(self._final_array[:-1] <= self._final_array[1:])
                )
            if not self._final_array_sorted:
                return None
            sums, counts, self._batch_prefix = search_sorted_many(
                self._final_array, lows, highs, self._batch_prefix
            )
            return sums, counts
        return None
