"""Shared batched-answering mixin for cascade-consolidating indexes.

The bucket-based progressive indexes (Radixsort LSD/MSD, Bucketsort) all
converge the same way: a fully sorted ``_final_array`` appears at the start
of the consolidation phase and a :class:`~repro.btree.cascade.CascadeTree`
is built over it.  :class:`ConsolidatedBatchSearch` gives them one shared
``search_many`` implementation over that structure instead of three copies.

The final array is sorted *by construction*: all radix clustering runs in
the column's order-preserving key space (:mod:`repro.core.keys`), so float
columns order their fractional parts correctly — the seed's sortedness
verification and per-query fallback (which papered over the old
truncated-integer radix keys) are gone.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase import IndexPhase
from repro.core.query import search_sorted_many


class ConsolidatedBatchSearch:
    """Mixin implementing ``_search_many`` via ``_cascade`` / ``_final_array``.

    Host classes provide ``_cascade`` (set when converged), ``_final_array``
    (the sorted array, available from consolidation onwards) and ``phase``.
    The public ``search_many`` wrapper on :class:`~repro.core.index.BaseIndex`
    corrects the structural answer for pending delta-store writes.
    """

    _batch_prefix: np.ndarray | None = None

    def _search_many(self, lows, highs):
        """Vectorized batch answering once a fully sorted array exists.

        Available from the consolidation phase onwards; returns ``None`` in
        earlier phases, in which case per-query dispatch is required.
        """
        if self._cascade is not None:
            return self._cascade.search_many(lows, highs)
        if self.phase is IndexPhase.CONSOLIDATION and self._final_array is not None:
            sums, counts, self._batch_prefix = search_sorted_many(
                self._final_array, lows, highs, self._batch_prefix
            )
            return sums, counts
        return None
