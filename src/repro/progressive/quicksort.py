"""Progressive Quicksort (Section 3.1 of the paper).

The algorithm progresses through the three canonical phases:

Creation
    An uninitialised array of the column's size is allocated on the first
    query and a pivot is chosen as the average of the column's smallest and
    largest value.  Every query copies another ``delta * N`` elements of the
    base column into the array — values below the pivot fill the array from
    the top, values at or above the pivot fill it from the bottom — and
    answers the query from the already-copied pieces plus a scan of the
    not-yet-copied tail of the base column.

Refinement
    The two initial pieces are recursively partitioned in place around new
    pivots (midpoints of the piece's value bounds), a bounded number of
    elements per query, driven by the shared
    :class:`~repro.progressive.sorter.ProgressiveSorter`.  A binary tree of
    pivots routes lookups to the pieces that can contain matching values.

Consolidation
    Once the array is fully sorted, a B+-tree cascade is built on top of it
    (shared :class:`~repro.progressive.base.ProgressiveIndexBase` driver).

The per-phase cost models implement the formulas of Section 3.1; every
``delta`` decision routes through the budget controller with those formulas
as the ``predict(delta)`` callable.
"""

from __future__ import annotations

import numpy as np

from repro.btree.cascade import DEFAULT_FANOUT
from repro.core.calibration import CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.progressive.base import ProgressiveIndexBase
from repro.progressive.sorter import DEFAULT_SORT_THRESHOLD, ProgressiveSorter
from repro.storage.column import Column


class ProgressiveQuicksort(ProgressiveIndexBase):
    """Progressive Quicksort index over a single column.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Budget policy (fixed delta, fixed time, time-adaptive or greedy).
    constants:
        Cost-model constants; defaults to the deterministic simulated set.
    sort_threshold:
        Pieces of at most this many elements are sorted outright during
        refinement (the paper's L1-cache-sized pieces).
    fanout:
        β of the consolidation-phase B+-tree cascade.
    """

    name = "PQ"
    description = "Progressive Quicksort"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants, fanout=fanout)
        self.sort_threshold = int(sort_threshold)
        # Creation-phase state -------------------------------------------------
        self._index_array: np.ndarray | None = None
        self._pivot: float | None = None
        self._low_fill = 0          # next free slot at the top of the array
        self._high_fill = 0         # one past the last free slot at the bottom
        self._elements_copied = 0   # how much of the base column has been copied
        # Refinement state -----------------------------------------------------
        self._sorter: ProgressiveSorter | None = None

    # ------------------------------------------------------------------
    @property
    def pivot(self) -> float | None:
        """The creation-phase pivot (average of the column's min and max)."""
        return self._pivot

    def memory_footprint(self) -> int:
        total = 0
        if self._index_array is not None:
            total += self._index_array.nbytes
        if self._cascade is not None:
            total += self._cascade.memory_footprint()
        elif self._consolidator is not None:
            total += sum(level.nbytes for level in self._consolidator.levels)
        return total

    def _search_many(self, lows, highs):
        """Vectorized batch answering once the index array is fully sorted.

        Available from the consolidation phase onwards (the sorter's range —
        the whole column — is sorted by then); returns ``None`` during
        creation and mid-refinement, where per-query dispatch is required.
        """
        if self._cascade is not None:
            return self._cascade.search_many(lows, highs)
        if self._sorter is not None:
            return self._sorter.search_many(lows, highs)
        return None

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _construction_state(self) -> dict:
        state = {
            "sort_threshold": self.sort_threshold,
            "pivot": self._pivot,
            "elements_copied": int(self._elements_copied),
        }
        if self._index_array is not None:
            state["index_array"] = np.array(self._index_array)
        if self._sorter is not None:
            state["sorter"] = self._sorter.state_dict()
        else:
            state["low_fill"] = int(self._low_fill)
            state["high_fill"] = int(self._high_fill)
        return state

    def _load_construction_state(self, state: dict) -> None:
        self.sort_threshold = int(state.get("sort_threshold", self.sort_threshold))
        self._pivot = state.get("pivot")
        self._elements_copied = int(state.get("elements_copied", 0))
        array = state.get("index_array")
        if array is None:
            return  # INACTIVE: nothing was allocated yet
        self._index_array = np.asarray(array)
        sorter_state = state.get("sorter")
        if sorter_state is not None:
            self._sorter = ProgressiveSorter.from_state(self._index_array, sorter_state)
            self._sorter.scratch_allocator = self._scratch_pool()
        else:
            self._low_fill = int(state["low_fill"])
            self._high_fill = int(state["high_fill"])

    def _restore_final_array(self, leaf: np.ndarray, sorted_ready: bool) -> None:
        self._index_array = leaf
        if sorted_ready and self._sorter is None:
            # Mid-consolidation batch lookups go through the sorter; rebuild
            # a trivially sorted one over the restored array.
            sorter = ProgressiveSorter(
                leaf, sort_threshold=self.sort_threshold
            )
            sorter.tree.mark_sorted(sorter.tree.root)
            sorter._worklist.clear()
            self._sorter = sorter

    # ------------------------------------------------------------------
    # Creation phase
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """Allocate the index array and choose the pivot (first query only)."""
        n = len(self._column)
        column_min = float(self._column.min())
        column_max = float(self._column.max())
        self._pivot = column_min + (column_max - column_min) / 2.0
        self._index_array = self._scratch_allocate(n, self._column.dtype)
        self._low_fill = 0
        self._high_fill = n
        self._elements_copied = 0

    def _creation_alpha(self, predicate: Predicate) -> float:
        """Fraction of the partial index scanned for ``predicate``."""
        n = len(self._column)
        if n == 0 or self._elements_copied == 0:
            return 0.0
        low_part = self._low_fill
        high_part = n - self._high_fill
        touched = 0
        if predicate.low < self._pivot:
            touched += low_part
        if predicate.high >= self._pivot:
            touched += high_part
        return touched / n

    def _creation_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        rho = self._elements_copied / n
        alpha = self._creation_alpha(predicate)
        scan_time = self._cost_model.scan_time(n)
        return CostBreakdown(
            scan=max(0.0, 1.0 - rho - delta) * scan_time + alpha * scan_time,
            lookup=0.0,
            indexing=delta * self._cost_model.pivot_time(n),
        )

    def _execute_creation(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        rho = self._elements_copied / n
        pivot_time = self._cost_model.pivot_time(n)
        decision = self._decide(
            pivot_time,
            lambda d: self._creation_cost(predicate, d),
            max_delta=1.0 - rho,
        )
        delta = decision.delta
        to_copy = min(n - self._elements_copied, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_copy > 0:
            self._copy_into_index(to_copy)

        # Answer the query: indexed pieces + not-yet-copied tail of the column.
        result = self._query_creation_pieces(predicate)
        result += self._scan_column(predicate, start=self._elements_copied)

        self.last_stats.elements_indexed = to_copy

        if self._elements_copied >= n:
            self._enter_refinement()
        return result

    def _copy_into_index(self, count: int) -> None:
        """Copy the next ``count`` base-column elements around the pivot.

        Streamed in budget-sized chunks so a paged base never materializes
        more than one chunk of decompressed data at a time.
        """
        start = self._elements_copied
        stop = min(len(self._column), start + count)
        step = self._stream_chunk_rows() or (stop - start) or 1
        for offset in range(start, stop, step):
            chunk = self._column.data[offset : min(stop, offset + step)]
            chunk = np.asarray(chunk)
            mask = chunk < self._pivot
            lows = chunk[mask]
            highs = chunk[~mask]
            self._index_array[self._low_fill : self._low_fill + lows.size] = lows
            self._low_fill += lows.size
            self._index_array[self._high_fill - highs.size : self._high_fill] = highs
            self._high_fill -= highs.size
        self._elements_copied = stop

    def _query_creation_pieces(self, predicate: Predicate) -> QueryResult:
        """Scan the low and/or high piece of the partial index."""
        result = QueryResult.empty()
        if self._elements_copied == 0:
            return result
        if predicate.low < self._pivot and self._low_fill > 0:
            segment = self._index_array[: self._low_fill]
            result += QueryResult.from_masked(segment, predicate.mask(segment))
        if predicate.high >= self._pivot and self._high_fill < self._index_array.size:
            segment = self._index_array[self._high_fill :]
            result += QueryResult.from_masked(segment, predicate.mask(segment))
        return result

    def _enter_refinement(self) -> None:
        self._sorter = ProgressiveSorter.from_partitioned(
            self._index_array,
            boundary=self._low_fill,
            pivot=self._pivot,
            value_low=float(self._column.min()),
            value_high=float(self._column.max()),
            sort_threshold=self.sort_threshold,
        )
        self._sorter.scratch_allocator = self._scratch_pool()
        self._advance_phase(IndexPhase.REFINEMENT)
        if self._sorter.is_sorted:
            self._enter_consolidation(self._index_array)

    # ------------------------------------------------------------------
    # Refinement phase
    # ------------------------------------------------------------------
    def _refinement_cost(self, predicate: Predicate, delta: float) -> CostBreakdown:
        n = len(self._column)
        alpha = self._sorter.scanned_fraction(predicate)
        return CostBreakdown(
            scan=alpha * self._cost_model.scan_time(n),
            lookup=self._cost_model.tree_lookup_time(self._sorter.height),
            indexing=delta * self._cost_model.swap_time(n),
        )

    def _execute_refinement(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        swap_time = self._cost_model.swap_time(n)
        decision = self._decide(
            swap_time, lambda d: self._refinement_cost(predicate, d)
        )
        delta = decision.delta
        element_budget = int(np.ceil(delta * n)) if delta > 0 else 0

        refined = 0
        if element_budget > 0:
            if delta >= 1.0 and self.budget.pooled:
                # A pooled batch budget granting the entire remaining phase:
                # complete it outright.  Per-query budgets keep the paper's
                # incremental refinement even at delta = 1.
                refined = self._sorter.finish()
            else:
                self._sorter.prioritize(predicate)
                refined = self._sorter.refine(element_budget)

        result = self._sorter.query(predicate)

        self.last_stats.elements_indexed = refined

        if self._sorter.is_sorted:
            self._enter_consolidation(self._index_array)
        return result
