"""Core abstractions shared by every index implementation.

This package contains the query model, the three-phase life cycle of a
progressive index, the cost-model constants and formulas from Section 3 /
Table 1 of the paper, and the fixed / adaptive indexing-budget controllers.
"""

from repro.core.budget import AdaptiveBudget, BatchBudget, FixedBudget, IndexingBudget
from repro.core.calibration import CostConstants, calibrate, simulated_constants
from repro.core.cost_model import CostModel
from repro.core.index import BaseIndex, QueryStats
from repro.core.keys import FloatKeyCodec, IntKeyCodec, RadixKeySpace, codec_for
from repro.core.phase import IndexPhase
from repro.core.query import (
    ConjunctionResult,
    Predicate,
    PredicateVector,
    QueryResult,
    point,
    range_query,
    search_sorted_many,
)

__all__ = [
    "AdaptiveBudget",
    "BaseIndex",
    "BatchBudget",
    "ConjunctionResult",
    "CostConstants",
    "CostModel",
    "FixedBudget",
    "FloatKeyCodec",
    "IndexPhase",
    "IndexingBudget",
    "IntKeyCodec",
    "Predicate",
    "PredicateVector",
    "QueryResult",
    "QueryStats",
    "RadixKeySpace",
    "calibrate",
    "codec_for",
    "point",
    "range_query",
    "search_sorted_many",
    "simulated_constants",
]
