"""Core abstractions shared by every index implementation.

This package contains the query model, the three-phase life cycle of a
progressive index (driven by the shared
:class:`~repro.core.phase.IndexLifecycle`), the cost-model constants and
formulas from Section 3 / Table 1 of the paper, and the budget-policy layer
(:mod:`repro.core.policy`): fixed, time-adaptive and cost-model-greedy
policies routed through one :class:`~repro.core.policy.BudgetController`.
"""

from repro.core.budget import AdaptiveBudget, BatchBudget, FixedBudget, IndexingBudget
from repro.core.calibration import CostConstants, calibrate, simulated_constants
from repro.core.cost_model import CostBreakdown, CostModel
from repro.core.index import BaseIndex, QueryStats
from repro.core.keys import FloatKeyCodec, IntKeyCodec, RadixKeySpace, codec_for
from repro.core.phase import IndexLifecycle, IndexPhase
from repro.core.policy import (
    MINIMUM_DELTA,
    BatchPool,
    ManualClock,
    BudgetController,
    BudgetPolicy,
    CappedBudget,
    CostModelGreedy,
    DeltaDecision,
    DeltaRequest,
    FixedDelta,
    FixedTime,
    TimeAdaptive,
)
from repro.core.query import (
    ConjunctionResult,
    Predicate,
    PredicateVector,
    QueryResult,
    point,
    range_query,
    search_sorted_many,
)

__all__ = [
    "MINIMUM_DELTA",
    "AdaptiveBudget",
    "BaseIndex",
    "BatchBudget",
    "BatchPool",
    "BudgetController",
    "BudgetPolicy",
    "CappedBudget",
    "ConjunctionResult",
    "CostBreakdown",
    "CostConstants",
    "CostModel",
    "CostModelGreedy",
    "DeltaDecision",
    "DeltaRequest",
    "FixedBudget",
    "FixedDelta",
    "FixedTime",
    "FloatKeyCodec",
    "IndexLifecycle",
    "IndexPhase",
    "IndexingBudget",
    "ManualClock",
    "TimeAdaptive",
    "IntKeyCodec",
    "Predicate",
    "PredicateVector",
    "QueryResult",
    "QueryStats",
    "RadixKeySpace",
    "calibrate",
    "codec_for",
    "point",
    "range_query",
    "search_sorted_many",
    "simulated_constants",
]
