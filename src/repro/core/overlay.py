"""Delta overlay: correct index answers over base ∪ delta and merge on budget.

The mutable column substrate (:mod:`repro.storage.column`) never pauses to
rebuild: writes land in an append-only delta store while every index keeps
answering from the structures it built over a pinned snapshot.
:class:`DeltaOverlay` is the shared mixin that makes *every* index family —
the four progressive indexes, all five cracking variants, both baselines and
the extensions — correct and fast under that regime without per-algorithm
rewrites:

1. **Correction.**  Each query's structural answer is corrected with the
   writes the structure has not absorbed yet:
   ``answer = structure + Σ inserted − Σ deleted`` over the matching delta
   rows.  The correction is two-tiered: writes the overlay has *absorbed*
   live in sorted side buffers (answered with ``np.searchsorted`` plus
   prefix sums, O(log d) per query no matter how many writes accumulate),
   and the newest raw window is scanned predicated (kept small by tier-1
   absorption).  Aggregate queries make equal values interchangeable, so
   tombstones carry values, not positions.

2. **Budget-priced merge.**  Absorbing and folding delta rows into the index
   is priced through the same :class:`~repro.core.policy.BudgetController`
   that paces construction: a converged index with pending writes enters the
   ``MERGE`` life-cycle stage, each query's policy decision grants a
   fraction of the predicted full merge cost (the ``merge`` component of the
   :class:`~repro.core.cost_model.CostBreakdown`), and the granted credit
   accumulates until it covers the family-specific *fold* — rebuilding the
   sorted leaf / B+-tree cascade with the buffered rows merged in — after
   which the lifecycle returns to ``CONVERGED``.  Families without a
   cheap fold (cracking keeps refining forever) simply keep the sorted
   buffers: correctness is identical, queries stay logarithmic in the
   buffered delta, and no budget is spent on unpayable work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.cost_model import CostBreakdown
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult, search_sorted_many
from repro.storage.delta import SortedRunStore
from repro.storage.membudget import budget_of


def _merge_into_sorted(sorted_buffer: np.ndarray, chunk: np.ndarray) -> np.ndarray:
    """Merge an unsorted chunk into a sorted buffer in one linear pass.

    Sorting only the (small, threshold-bounded) chunk and splicing it in
    with ``searchsorted`` + ``np.insert`` keeps each absorption linear in
    the buffer size — re-sorting the whole accumulated buffer would make
    the never-folding families (cracking, FullScan) pay a growing sort on
    every absorption.
    """
    chunk = np.sort(chunk)
    if sorted_buffer.size == 0:
        return chunk
    positions = np.searchsorted(sorted_buffer, chunk)
    return np.insert(sorted_buffer, positions, chunk)


def _predicated_delta(values: np.ndarray, low, high) -> Tuple[float, int]:
    """Sum and count of ``values`` in ``[low, high]`` (predicated scan)."""
    if values.size == 0:
        return 0.0, 0
    mask = (values >= low) & (values <= high)
    count = int(np.count_nonzero(mask))
    if count == 0:
        return 0.0, 0
    return values[mask].sum(), count


class DeltaOverlay:
    """Mixin giving any :class:`~repro.core.index.BaseIndex` mutable behavior.

    The mixin is initialised by ``BaseIndex.__init__`` via
    :meth:`_init_overlay`; subclasses that own a foldable sorted structure
    override :attr:`can_fold` and :meth:`_fold_delta`.
    """

    #: Raw delta ops tolerated before a tier-1 absorption into the sorted
    #: buffers is forced (outside the budget-driven MERGE phase).
    ABSORB_THRESHOLD = 64

    #: Fraction of the structural base the pending delta must reach before a
    #: fold is worth its O(N) pass; below it the sorted buffers answer in
    #: O(log d) and folding would just be a rebuild-per-write in disguise.
    MERGE_TRIGGER_FRACTION = 1.0 / 256.0

    #: Whether this family can fold sorted delta buffers into its structure
    #: (and therefore participates in the budget-priced ``MERGE`` phase).
    can_fold = False

    # ------------------------------------------------------------------
    def _init_overlay(self, live, snapshot) -> None:
        """Wire the overlay to the live column (``None`` disables it)."""
        self._live = live
        version = snapshot.version if live is not None else 0
        #: Writes with seq <= _folded_seq are inside the structural base.
        self._folded_seq = version
        #: Writes with seq <= _absorbed_seq are in the sorted side buffers.
        self._absorbed_seq = version
        self._buffer_ins = np.empty(0, dtype=snapshot.dtype)
        self._buffer_del = np.empty(0, dtype=snapshot.dtype)
        self._buffer_ins_prefix: Optional[np.ndarray] = None
        self._buffer_del_prefix: Optional[np.ndarray] = None
        # Under a memory budget the sorted buffers are capped: past the cap
        # they are sealed into sorted on-disk runs, which answer the same
        # searchsorted + prefix-sum correction without staying resident.
        budget = budget_of(live) if live is not None else None
        if budget is not None:
            self._overlay_cap_rows: Optional[int] = budget.overlay_cap_rows(snapshot.dtype)
            self._run_ins: Optional[SortedRunStore] = SortedRunStore(budget.spill_dir)
            self._run_del: Optional[SortedRunStore] = SortedRunStore(budget.spill_dir)
        else:
            self._overlay_cap_rows = None
            self._run_ins = None
            self._run_del = None
        self._merge_credit = 0.0
        self._rows_absorbed = 0
        self._rows_folded = 0
        self._folds_completed = 0
        self._merge_seconds = 0.0

    # ------------------------------------------------------------------
    # Pending-state inspection
    # ------------------------------------------------------------------
    @property
    def live_column(self):
        """The live mutable column (``None`` for frozen-snapshot indexes)."""
        return self._live

    def _overlay_active(self) -> bool:
        return self._live is not None and self._live.version > self._folded_seq

    def _raw_window(self) -> Tuple[np.ndarray, np.ndarray]:
        """Insert/delete values not yet absorbed into the sorted buffers."""
        delta = self._live.delta
        if delta is None:
            empty = np.empty(0, dtype=self._column.dtype)
            return empty, empty
        version = delta.version
        return (
            delta.insert_window(self._absorbed_seq, version),
            delta.delete_window(self._absorbed_seq, version),
        )

    def pending_delta_rows(self) -> int:
        """Delta rows (inserts + tombstones) not yet folded into the index."""
        if not self._overlay_active():
            return 0
        raw_ins, raw_del = self._raw_window()
        return (
            int(self._buffer_ins.size)
            + int(self._buffer_del.size)
            + int(raw_ins.size)
            + int(raw_del.size)
            + self._spilled_rows()
        )

    def _spilled_rows(self) -> int:
        """Rows living in sealed on-disk runs (0 without a budget)."""
        if self._run_ins is None:
            return 0
        return self._run_ins.total_rows + self._run_del.total_rows

    # ------------------------------------------------------------------
    # Correction
    # ------------------------------------------------------------------
    def _overlay_correction(self, predicate: Predicate) -> Optional[QueryResult]:
        """Net (sum, count) the structural answer is missing, or ``None``."""
        if not self._overlay_active():
            return None
        low, high = predicate.low, predicate.high
        ins_sum, ins_count = _predicated_delta(self._buffer_ins, low, high)
        del_sum, del_count = _predicated_delta(self._buffer_del, low, high)
        raw_ins, raw_del = self._raw_window()
        raw_ins_sum, raw_ins_count = _predicated_delta(raw_ins, low, high)
        raw_del_sum, raw_del_count = _predicated_delta(raw_del, low, high)
        count = ins_count + raw_ins_count - del_count - raw_del_count
        value_sum = ins_sum + raw_ins_sum - del_sum - raw_del_sum
        if self._run_ins is not None:
            run_ins_sum, run_ins_count = self._run_ins.correction(low, high)
            run_del_sum, run_del_count = self._run_del.correction(low, high)
            count += run_ins_count - run_del_count
            value_sum = value_sum + run_ins_sum - run_del_sum
        if count == 0 and value_sum == 0:
            return None
        return QueryResult(value_sum, count)

    def _overlay_correct_many(self, lows, highs, answered):
        """Correct a vectorized batch answer for the pending delta.

        The raw window is absorbed into the sorted buffers first (one sort,
        amortized across the batch), then both buffers are aggregated with
        the same ``searchsorted`` + prefix-sum primitive the batch engines
        use, keeping the whole correction free of per-query Python work.
        """
        if not self._overlay_active():
            return answered
        self._absorb_raw()
        sums, counts = answered
        # Copy before correcting in place; keep the sum dtype (int64 columns
        # stay exact — casting to float64 could round sums above 2**53).
        sums = np.array(sums)
        counts = np.array(counts, dtype=np.int64)
        if self._buffer_ins.size:
            add_sums, add_counts, self._buffer_ins_prefix = search_sorted_many(
                self._buffer_ins, lows, highs, self._buffer_ins_prefix
            )
            sums += add_sums
            counts += add_counts
        if self._buffer_del.size:
            sub_sums, sub_counts, self._buffer_del_prefix = search_sorted_many(
                self._buffer_del, lows, highs, self._buffer_del_prefix
            )
            sums -= sub_sums
            counts -= sub_counts
        if self._run_ins is not None and self._spilled_rows():
            run_sums, run_counts = self._run_ins.correct_many(lows, highs)
            sums = sums + run_sums
            counts += run_counts
            run_sums, run_counts = self._run_del.correct_many(lows, highs)
            sums = sums - run_sums
            counts -= run_counts
        return sums, counts

    # ------------------------------------------------------------------
    # Tier-1 merge: raw window -> sorted buffers
    # ------------------------------------------------------------------
    def _absorb_raw(self) -> int:
        """Sort the raw write window into the side buffers; returns rows moved."""
        if self._live is None:
            return 0
        delta = self._live.delta
        if delta is None:
            return 0
        version = delta.version
        if version == self._absorbed_seq:
            return 0
        raw_ins, raw_del = self._raw_window()
        moved = int(raw_ins.size + raw_del.size)
        if raw_ins.size:
            self._buffer_ins = _merge_into_sorted(self._buffer_ins, raw_ins)
            self._buffer_ins_prefix = None
        if raw_del.size:
            self._buffer_del = _merge_into_sorted(self._buffer_del, raw_del)
            self._buffer_del_prefix = None
        self._absorbed_seq = version
        self._rows_absorbed += moved
        self._maybe_seal_buffers()
        return moved

    def _maybe_seal_buffers(self) -> None:
        """Seal over-cap sorted buffers into on-disk runs (budget only)."""
        cap = self._overlay_cap_rows
        if cap is None:
            return
        sealed = 0
        if self._buffer_ins.size > cap:
            self._run_ins.seal(self._buffer_ins)
            self._buffer_ins = np.empty(0, dtype=self._buffer_ins.dtype)
            self._buffer_ins_prefix = None
            sealed += 1
        if self._buffer_del.size > cap:
            self._run_del.seal(self._buffer_del)
            self._buffer_del = np.empty(0, dtype=self._buffer_del.dtype)
            self._buffer_del_prefix = None
            sealed += 1
        if sealed:
            from repro import obs

            obs.metrics().counter(
                "overlay.seals",
                help="Overlay buffers sealed into sorted on-disk runs",
            ).inc(sealed)

    # ------------------------------------------------------------------
    # Tier-2 merge: sorted buffers -> structure (budget-priced)
    # ------------------------------------------------------------------
    def _fold_delta(self, inserts_sorted: np.ndarray, tombstones_sorted: np.ndarray) -> bool:
        """Fold the sorted buffers into the structural base.

        Families with a sorted backbone (progressive cascades, the full
        index) override this and return ``True``; the default keeps the
        buffers (cracking and the scan baseline stay overlay-resident).
        """
        return False

    def _fold_base_size(self) -> int:
        """Structure size the fold pricing is relative to."""
        return len(self._column)

    def merge_trigger_rows(self) -> int:
        """Pending rows required before a merge cycle starts."""
        return max(
            self.ABSORB_THRESHOLD,
            int(self._fold_base_size() * self.MERGE_TRIGGER_FRACTION),
        )

    def has_pending_merge(self) -> bool:
        """Whether budgeted merge work is running or due on the next query.

        The batch executor consults this so a converged index with a
        trigger-crossing pending delta keeps receiving per-query dispatch —
        pooled budget then front-loads the fold — instead of jumping
        straight to the vectorized tail.
        """
        if not self.can_fold or not self._overlay_active():
            return False
        phase = self._lifecycle.phase
        if phase is IndexPhase.MERGE:
            return True
        return (
            phase is IndexPhase.CONVERGED
            and self.pending_delta_rows() >= self.merge_trigger_rows()
        )

    def _merge_full_work_time(self) -> float:
        """Predicted cost of absorbing + folding the entire pending delta."""
        raw_ins, raw_del = self._raw_window()
        raw = int(raw_ins.size + raw_del.size)
        buffered = int(self._buffer_ins.size + self._buffer_del.size) + self._spilled_rows()
        model = self._cost_model
        return model.delta_absorb_time(raw) + model.delta_fold_time(
            self._fold_base_size(), raw + buffered
        )

    def _merge_maintenance(self, predicate: Predicate) -> None:
        """Per-query merge driver, called after the answer is corrected.

        Outside the MERGE phase the overlay only keeps the raw window small
        (threshold-triggered tier-1 absorption).  A converged foldable index
        with pending writes enters MERGE; every query then routes one merge
        decision through the budget controller, accumulating credit until
        the fold is paid for.
        """
        if not self._overlay_active():
            return
        phase = self._lifecycle.phase
        mergeable = self.can_fold and phase in (IndexPhase.CONVERGED, IndexPhase.MERGE)
        if mergeable and phase is IndexPhase.CONVERGED:
            # LSM-style trigger: only start a merge cycle once the pending
            # delta justifies the O(N) fold.  An in-progress MERGE always
            # runs to completion.
            if self.pending_delta_rows() < self.merge_trigger_rows():
                mergeable = False
        if not mergeable:
            raw_ins, raw_del = self._raw_window()
            if raw_ins.size + raw_del.size >= self.ABSORB_THRESHOLD:
                self._absorb_raw()
            return
        if phase is IndexPhase.CONVERGED:
            self._advance_phase(IndexPhase.MERGE)
            # Baselines never spend construction budget, so their
            # fraction-based policies may still be unresolved when the first
            # merge decision arrives (idempotent for everyone else).
            self._register_scan_time()
        full_merge = self._merge_full_work_time()
        base = self.last_stats.predicted_breakdown or CostBreakdown(0.0, 0.0, 0.0)

        def predict(delta: float) -> CostBreakdown:
            return CostBreakdown(
                scan=base.scan,
                lookup=base.lookup,
                indexing=base.indexing,
                merge=delta * full_merge,
            )

        decision = self._decide(full_merge, predict)
        granted = decision.delta * full_merge
        self._merge_credit += granted
        self._merge_seconds += granted
        if granted <= 0.0:
            return
        self._absorb_raw()
        pending = int(self._buffer_ins.size + self._buffer_del.size) + self._spilled_rows()
        fold_cost = self._cost_model.delta_fold_time(self._fold_base_size(), pending)
        if self._merge_credit < fold_cost:
            return
        folded_rows = pending
        fold_ins, fold_del = self._gather_fold_buffers()
        if not self._fold_delta(fold_ins, fold_del):
            return
        self._merge_credit = max(0.0, self._merge_credit - fold_cost)
        self._folded_seq = self._absorbed_seq
        self._rows_folded += folded_rows
        self._folds_completed += 1
        from repro import obs

        obs.metrics().counter(
            "overlay.folds",
            help="Budget-priced delta folds merged into index structures",
        ).inc()
        self._clear_buffers()
        if self._live.version == self._folded_seq:
            self._merge_credit = 0.0
            self._advance_phase(IndexPhase.CONVERGED)

    def _gather_fold_buffers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Resident buffers merged with any sealed runs, both sorted.

        A fold is O(N) anyway, so materializing the runs here does not
        change the asymptotic cost — and they are freed right after.
        """
        fold_ins, fold_del = self._buffer_ins, self._buffer_del
        if self._run_ins is not None and self._run_ins.total_rows:
            fold_ins = np.concatenate([fold_ins, self._run_ins.merged()])
            fold_ins.sort(kind="stable")
        if self._run_del is not None and self._run_del.total_rows:
            fold_del = np.concatenate([fold_del, self._run_del.merged()])
            fold_del.sort(kind="stable")
        return fold_ins, fold_del

    def _clear_buffers(self) -> None:
        self._buffer_ins = np.empty(0, dtype=self._column.dtype)
        self._buffer_del = np.empty(0, dtype=self._column.dtype)
        self._buffer_ins_prefix = None
        self._buffer_del_prefix = None
        if self._run_ins is not None:
            self._run_ins.clear()
            self._run_del.clear()

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _overlay_state(self) -> dict:
        """Serializable snapshot of the overlay.

        The raw write window is absorbed into the sorted buffers first
        (answer-neutral — it is the same tier-1 absorption every batch pays),
        so the persisted state is just the two sorted buffers plus the
        watermarks into the column's sequence space.
        """
        if self._live is None:
            return {"mutable": False, "snapshot_version": int(self._column.version)}
        self._absorb_raw()
        # Sealed runs are merged into the persisted buffers: the state
        # format stays version-1 and the load path re-seals past the cap.
        state_ins, state_del = self._gather_fold_buffers()
        return {
            "mutable": True,
            "snapshot_version": int(self._column.version),
            "folded_seq": int(self._folded_seq),
            "absorbed_seq": int(self._absorbed_seq),
            "buffer_ins": np.array(state_ins),
            "buffer_del": np.array(state_del),
            "merge_credit": float(self._merge_credit),
            "rows_absorbed": int(self._rows_absorbed),
            "rows_folded": int(self._rows_folded),
            "folds_completed": int(self._folds_completed),
            "merge_seconds": float(self._merge_seconds),
        }

    def _load_overlay_state(self, state: dict) -> None:
        """Restore the overlay watermarks and sorted buffers."""
        if not state.get("mutable") or self._live is None:
            return
        self._folded_seq = int(state["folded_seq"])
        self._absorbed_seq = int(state["absorbed_seq"])
        self._buffer_ins = np.asarray(state["buffer_ins"], dtype=self._column.dtype)
        self._buffer_del = np.asarray(state["buffer_del"], dtype=self._column.dtype)
        self._buffer_ins_prefix = None
        self._buffer_del_prefix = None
        if self._run_ins is not None:
            self._run_ins.clear()
            self._run_del.clear()
        self._maybe_seal_buffers()
        self._merge_credit = float(state.get("merge_credit", 0.0))
        self._rows_absorbed = int(state.get("rows_absorbed", 0))
        self._rows_folded = int(state.get("rows_folded", 0))
        self._folds_completed = int(state.get("folds_completed", 0))
        self._merge_seconds = float(state.get("merge_seconds", 0.0))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def overlay_stats(self) -> dict:
        """Write/merge counters surfaced by ``session.status()``."""
        if self._live is None:
            return {"mutable": False}
        raw_ins, raw_del = self._raw_window()
        return {
            "mutable": True,
            "column_version": int(self._live.version),
            "folded_watermark": int(self._folded_seq),
            "pending_rows": self.pending_delta_rows(),
            "buffered_rows": int(self._buffer_ins.size + self._buffer_del.size),
            "raw_rows": int(raw_ins.size + raw_del.size),
            "rows_absorbed": int(self._rows_absorbed),
            "rows_folded": int(self._rows_folded),
            "folds_completed": int(self._folds_completed),
            "merge_budget_seconds": float(self._merge_seconds),
            "overlay_bytes": int(self._buffer_ins.nbytes + self._buffer_del.nbytes),
            "spilled_rows": self._spilled_rows(),
            "spilled_runs": 0 if self._run_ins is None
            else len(self._run_ins.runs) + len(self._run_del.runs),
        }
