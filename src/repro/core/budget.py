"""Indexing-budget controllers.

Section 3 of the paper defines two budget flavours:

Fixed indexing budget
    The user provides an indexing budget ``t_budget`` for the first query;
    the corresponding ``delta`` is computed once (``delta = t_budget /
    t_full_work``) and reused for the remainder of the workload.  A fixed
    ``delta`` can also be supplied directly, which is how the delta-sweep
    experiment (Figure 7) is expressed.

Adaptive indexing budget
    The user provides ``t_budget`` for the first query, which fixes the target
    query time ``t_adaptive = t_scan + t_budget``.  For every subsequent query
    the cost model computes how much indexing work keeps the total query cost
    at ``t_adaptive``, i.e. ``delta = t_budget_remaining / t_full_work`` where
    ``t_budget_remaining = t_adaptive - t_query_without_indexing``.

An index interacts with its budget through two calls per query:

``next_delta(full_work_time, query_base_cost)``
    Returns the fraction of the column to index for this query, where
    ``full_work_time`` is the cost of performing the *entire* remaining phase
    work in one go and ``query_base_cost`` is the predicted cost of answering
    the query without doing any indexing.

``register_scan_time(t_scan)``
    Called once, on the first query, so budgets expressed as a fraction of
    the scan cost can be resolved to seconds.
"""

from __future__ import annotations

import abc

from repro.errors import InvalidBudgetError

#: Smallest delta the adaptive budget will return while work remains.  A
#: strictly positive floor guarantees deterministic convergence even when a
#: single query is predicted to have no slack at all.
MINIMUM_DELTA = 1e-4


class IndexingBudget(abc.ABC):
    """Strategy object deciding how much indexing work each query performs."""

    #: Whether the budget recomputes delta for every query.
    adaptive: bool = False

    def register_scan_time(self, scan_time: float) -> None:
        """Inform the budget of the measured/predicted full-scan time.

        Budgets defined as a fraction of the scan cost resolve themselves to
        seconds on this call; other budgets ignore it.
        """

    @abc.abstractmethod
    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        """Return the fraction of the remaining phase work to perform now.

        Parameters
        ----------
        full_work_time:
            Predicted cost (seconds) of performing all remaining work of the
            current phase at once.
        query_base_cost:
            Predicted cost (seconds) of answering the current query without
            any indexing work.
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class FixedBudget(IndexingBudget):
    """Index a fixed fraction ``delta`` of the column with every query.

    Parameters
    ----------
    delta:
        Fraction of the (remaining phase) work performed per query.  ``0``
        disables indexing entirely — the index never converges, matching the
        paper's ``delta = 0`` discussion.
    """

    adaptive = False

    def __init__(self, delta: float) -> None:
        if not 0.0 <= delta <= 1.0:
            raise InvalidBudgetError(f"delta must be within [0, 1], got {delta}")
        self.delta = float(delta)

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        return self.delta

    def describe(self) -> str:
        return f"FixedBudget(delta={self.delta})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


class FixedTimeBudget(IndexingBudget):
    """Fixed budget expressed as seconds of indexing time for the first query.

    The delta implied by the first query (``t_budget / t_full_work``) is
    computed once and reused for all subsequent queries, as described in the
    paper's "fixed indexing budget" flavour.
    """

    adaptive = False

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        self.budget_seconds = float(budget_seconds)
        self._delta: float | None = None

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self._delta is None:
            if full_work_time <= 0:
                self._delta = 1.0
            else:
                self._delta = min(1.0, self.budget_seconds / full_work_time)
        return self._delta

    def describe(self) -> str:
        return f"FixedTimeBudget(budget={self.budget_seconds:.6f}s)"


class AdaptiveBudget(IndexingBudget):
    """Adaptive budget keeping total query cost approximately constant.

    Parameters
    ----------
    budget_seconds:
        Indexing budget of the first query, in seconds.  Mutually exclusive
        with ``scan_fraction``.
    scan_fraction:
        Indexing budget of the first query expressed as a fraction of the
        full-scan cost (the paper's experiments use ``0.2``, i.e. every query
        costs about ``1.2 x t_scan`` until convergence).  Resolved to seconds
        when :meth:`register_scan_time` is called.
    minimum_delta:
        Floor on the returned delta while work remains, guaranteeing
        convergence even when the cost model predicts no slack.
    """

    adaptive = True

    def __init__(
        self,
        budget_seconds: float | None = None,
        scan_fraction: float | None = None,
        minimum_delta: float = MINIMUM_DELTA,
    ) -> None:
        if (budget_seconds is None) == (scan_fraction is None):
            raise InvalidBudgetError(
                "provide exactly one of budget_seconds or scan_fraction"
            )
        if budget_seconds is not None and budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        if scan_fraction is not None and scan_fraction <= 0:
            raise InvalidBudgetError(
                f"scan_fraction must be positive, got {scan_fraction}"
            )
        if minimum_delta < 0:
            raise InvalidBudgetError(
                f"minimum_delta must be non-negative, got {minimum_delta}"
            )
        self.budget_seconds = budget_seconds
        self.scan_fraction = scan_fraction
        self.minimum_delta = float(minimum_delta)
        self.target_query_cost: float | None = None

    def register_scan_time(self, scan_time: float) -> None:
        if self.budget_seconds is None:
            self.budget_seconds = self.scan_fraction * scan_time
        if self.target_query_cost is None:
            self.target_query_cost = scan_time + self.budget_seconds

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self.budget_seconds is None:
            raise InvalidBudgetError(
                "AdaptiveBudget with scan_fraction requires register_scan_time() "
                "before the first next_delta() call"
            )
        if full_work_time <= 0:
            return 1.0
        if self.target_query_cost is None:
            # First query: the budget itself is the indexing slack.
            slack = self.budget_seconds
        else:
            slack = self.target_query_cost - query_base_cost
        delta = slack / full_work_time
        return float(min(1.0, max(self.minimum_delta, delta)))

    def describe(self) -> str:
        if self.scan_fraction is not None:
            return f"AdaptiveBudget(scan_fraction={self.scan_fraction})"
        return f"AdaptiveBudget(budget={self.budget_seconds:.6f}s)"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
