"""Back-compatibility layer over :mod:`repro.core.policy`.

Earlier revisions of this library exposed the indexing budgets as ad-hoc
classes in this module.  The budget logic now lives in
:mod:`repro.core.policy` as :class:`~repro.core.policy.BudgetPolicy`
objects routed through one :class:`~repro.core.policy.BudgetController`;
this module keeps the historical names importable:

========================  ==========================================
Legacy name               Policy class
========================  ==========================================
``IndexingBudget``        :class:`~repro.core.policy.BudgetPolicy`
``FixedBudget``           :class:`~repro.core.policy.FixedDelta`
``FixedTimeBudget``       :class:`~repro.core.policy.FixedTime`
``AdaptiveBudget``        :class:`~repro.core.policy.TimeAdaptive`
``BatchBudget``           :class:`~repro.core.policy.BatchPool`
========================  ==========================================

New code should import from :mod:`repro.core.policy` directly.
"""

from __future__ import annotations

from repro.core.policy import (
    MINIMUM_DELTA,
    BatchPool,
    BudgetController,
    BudgetPolicy,
    CostModelGreedy,
    DeltaDecision,
    DeltaRequest,
    FixedDelta,
    FixedTime,
    TimeAdaptive,
)

#: Legacy aliases (the classes themselves, so ``isinstance`` checks and
#: subclassing written against the old names keep working).
IndexingBudget = BudgetPolicy
FixedBudget = FixedDelta
FixedTimeBudget = FixedTime
AdaptiveBudget = TimeAdaptive
BatchBudget = BatchPool

__all__ = [
    "MINIMUM_DELTA",
    "AdaptiveBudget",
    "BatchBudget",
    "BatchPool",
    "BudgetController",
    "BudgetPolicy",
    "CostModelGreedy",
    "DeltaDecision",
    "DeltaRequest",
    "FixedBudget",
    "FixedDelta",
    "FixedTime",
    "FixedTimeBudget",
    "IndexingBudget",
    "TimeAdaptive",
]
