"""Indexing-budget controllers.

Section 3 of the paper defines two budget flavours:

Fixed indexing budget
    The user provides an indexing budget ``t_budget`` for the first query;
    the corresponding ``delta`` is computed once (``delta = t_budget /
    t_full_work``) and reused for the remainder of the workload.  A fixed
    ``delta`` can also be supplied directly, which is how the delta-sweep
    experiment (Figure 7) is expressed.

Adaptive indexing budget
    The user provides ``t_budget`` for the first query, which fixes the target
    query time ``t_adaptive = t_scan + t_budget``.  For every subsequent query
    the cost model computes how much indexing work keeps the total query cost
    at ``t_adaptive``, i.e. ``delta = t_budget_remaining / t_full_work`` where
    ``t_budget_remaining = t_adaptive - t_query_without_indexing``.

An index interacts with its budget through two calls per query:

``next_delta(full_work_time, query_base_cost)``
    Returns the fraction of the column to index for this query, where
    ``full_work_time`` is the cost of performing the *entire* remaining phase
    work in one go and ``query_base_cost`` is the predicted cost of answering
    the query without doing any indexing.

``register_scan_time(t_scan)``
    Called once, on the first query, so budgets expressed as a fraction of
    the scan cost can be resolved to seconds.
"""

from __future__ import annotations

import abc

from repro.errors import InvalidBudgetError

#: Smallest delta the adaptive budget will return while work remains.  A
#: strictly positive floor guarantees deterministic convergence even when a
#: single query is predicted to have no slack at all.
MINIMUM_DELTA = 1e-4


class IndexingBudget(abc.ABC):
    """Strategy object deciding how much indexing work each query performs."""

    #: Whether the budget recomputes delta for every query.
    adaptive: bool = False

    #: Whether the budget pools many queries' worth of work (batch
    #: execution).  Indexes may take whole-phase fast paths under a pooled
    #: budget; under per-query budgets they must keep the paper's bounded
    #: per-query work semantics.
    pooled: bool = False

    def register_scan_time(self, scan_time: float) -> None:
        """Inform the budget of the measured/predicted full-scan time.

        Budgets defined as a fraction of the scan cost resolve themselves to
        seconds on this call; other budgets ignore it.
        """

    @abc.abstractmethod
    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        """Return the fraction of the remaining phase work to perform now.

        Parameters
        ----------
        full_work_time:
            Predicted cost (seconds) of performing all remaining work of the
            current phase at once.
        query_base_cost:
            Predicted cost (seconds) of answering the current query without
            any indexing work.
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class FixedBudget(IndexingBudget):
    """Index a fixed fraction ``delta`` of the column with every query.

    Parameters
    ----------
    delta:
        Fraction of the (remaining phase) work performed per query.  ``0``
        disables indexing entirely — the index never converges, matching the
        paper's ``delta = 0`` discussion.
    """

    adaptive = False

    def __init__(self, delta: float) -> None:
        if not 0.0 <= delta <= 1.0:
            raise InvalidBudgetError(f"delta must be within [0, 1], got {delta}")
        self.delta = float(delta)

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        return self.delta

    def describe(self) -> str:
        return f"FixedBudget(delta={self.delta})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


class FixedTimeBudget(IndexingBudget):
    """Fixed budget expressed as seconds of indexing time for the first query.

    The delta implied by the first query (``t_budget / t_full_work``) is
    computed once and reused for all subsequent queries, as described in the
    paper's "fixed indexing budget" flavour.
    """

    adaptive = False

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        self.budget_seconds = float(budget_seconds)
        self._delta: float | None = None

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self._delta is None:
            if full_work_time <= 0:
                self._delta = 1.0
            else:
                self._delta = min(1.0, self.budget_seconds / full_work_time)
        return self._delta

    def describe(self) -> str:
        return f"FixedTimeBudget(budget={self.budget_seconds:.6f}s)"


class AdaptiveBudget(IndexingBudget):
    """Adaptive budget keeping total query cost approximately constant.

    Parameters
    ----------
    budget_seconds:
        Indexing budget of the first query, in seconds.  Mutually exclusive
        with ``scan_fraction``.
    scan_fraction:
        Indexing budget of the first query expressed as a fraction of the
        full-scan cost (the paper's experiments use ``0.2``, i.e. every query
        costs about ``1.2 x t_scan`` until convergence).  Resolved to seconds
        when :meth:`register_scan_time` is called.
    minimum_delta:
        Floor on the returned delta while work remains, guaranteeing
        convergence even when the cost model predicts no slack.
    """

    adaptive = True

    def __init__(
        self,
        budget_seconds: float | None = None,
        scan_fraction: float | None = None,
        minimum_delta: float = MINIMUM_DELTA,
    ) -> None:
        if (budget_seconds is None) == (scan_fraction is None):
            raise InvalidBudgetError(
                "provide exactly one of budget_seconds or scan_fraction"
            )
        if budget_seconds is not None and budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        if scan_fraction is not None and scan_fraction <= 0:
            raise InvalidBudgetError(
                f"scan_fraction must be positive, got {scan_fraction}"
            )
        if minimum_delta < 0:
            raise InvalidBudgetError(
                f"minimum_delta must be non-negative, got {minimum_delta}"
            )
        self.budget_seconds = budget_seconds
        self.scan_fraction = scan_fraction
        self.minimum_delta = float(minimum_delta)
        self.target_query_cost: float | None = None

    def register_scan_time(self, scan_time: float) -> None:
        if self.budget_seconds is None:
            self.budget_seconds = self.scan_fraction * scan_time
        if self.target_query_cost is None:
            self.target_query_cost = scan_time + self.budget_seconds

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self.budget_seconds is None:
            raise InvalidBudgetError(
                "AdaptiveBudget with scan_fraction requires register_scan_time() "
                "before the first next_delta() call"
            )
        if full_work_time <= 0:
            return 1.0
        if self.target_query_cost is None:
            # First query: the budget itself is the indexing slack.
            slack = self.budget_seconds
        else:
            slack = self.target_query_cost - query_base_cost
        delta = slack / full_work_time
        return float(min(1.0, max(self.minimum_delta, delta)))

    def describe(self) -> str:
        if self.scan_fraction is not None:
            return f"AdaptiveBudget(scan_fraction={self.scan_fraction})"
        return f"AdaptiveBudget(budget={self.budget_seconds:.6f}s)"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


class BatchBudget(IndexingBudget):
    """Shared indexing-budget pool for a batch of queries.

    The batch executor answers a whole workload at once, so instead of
    granting every query its individual slice of indexing time, the
    per-query budget of ``n_queries`` queries is pooled into one reservoir
    that is drained greedily: the first queries of the batch may perform far
    more than their per-query share of indexing work (front-loading
    convergence so the rest of the batch can be answered with vectorized
    lookups), but the batch as a whole never spends more indexing time than
    the equivalent sequential execution would have.

    Parameters
    ----------
    n_queries:
        Number of queries whose budgets are pooled.
    per_query_seconds:
        Indexing budget of one query, in seconds.  Mutually exclusive with
        ``scan_fraction``.
    scan_fraction:
        Per-query budget as a fraction of the full-scan cost (the paper's
        default is ``0.2``); resolved to seconds by
        :meth:`register_scan_time`.
    """

    adaptive = True
    pooled = True

    def __init__(
        self,
        n_queries: int,
        per_query_seconds: float | None = None,
        scan_fraction: float | None = None,
    ) -> None:
        if n_queries < 0:
            raise InvalidBudgetError(f"n_queries must be non-negative, got {n_queries}")
        if per_query_seconds is not None and scan_fraction is not None:
            raise InvalidBudgetError(
                "provide at most one of per_query_seconds or scan_fraction"
            )
        if per_query_seconds is not None and per_query_seconds < 0:
            raise InvalidBudgetError(
                f"per_query_seconds must be non-negative, got {per_query_seconds}"
            )
        if scan_fraction is not None and scan_fraction < 0:
            raise InvalidBudgetError(
                f"scan_fraction must be non-negative, got {scan_fraction}"
            )
        if per_query_seconds is None and scan_fraction is None:
            scan_fraction = 0.2
        self.n_queries = int(n_queries)
        self.scan_fraction = scan_fraction
        self.pool_seconds: float | None = (
            None if per_query_seconds is None else per_query_seconds * self.n_queries
        )
        self.spent_seconds = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def for_index(cls, index, n_queries: int) -> "BatchBudget":
        """A pool equivalent to ``n_queries`` queries of ``index``'s budget.

        The mapping preserves the spirit of each per-query budget flavour:
        time-based budgets pool their per-query seconds, fraction/delta-based
        budgets pool the corresponding fraction of the scan cost.
        """
        budget = index.budget
        if isinstance(budget, cls):
            per_query = None
            if budget.pool_seconds is not None and budget.n_queries > 0:
                per_query = budget.pool_seconds / budget.n_queries
            if per_query is not None:
                return cls(n_queries, per_query_seconds=per_query)
            return cls(n_queries, scan_fraction=budget.scan_fraction)
        if isinstance(budget, AdaptiveBudget):
            if budget.budget_seconds is not None:
                return cls(n_queries, per_query_seconds=budget.budget_seconds)
            return cls(n_queries, scan_fraction=budget.scan_fraction)
        if isinstance(budget, FixedTimeBudget):
            return cls(n_queries, per_query_seconds=budget.budget_seconds)
        if isinstance(budget, FixedBudget):
            # A fixed delta indexes `delta` of the phase work per query; one
            # unit of phase work costs on the order of one scan, so the
            # pooled equivalent is `delta` of the scan cost per query.
            return cls(n_queries, scan_fraction=budget.delta)
        return cls(n_queries)

    # ------------------------------------------------------------------
    @property
    def remaining_seconds(self) -> float:
        """Indexing seconds left in the pool (``0`` when exhausted)."""
        if self.pool_seconds is None:
            return 0.0
        return max(0.0, self.pool_seconds - self.spent_seconds)

    @property
    def exhausted(self) -> bool:
        """Whether the pool has been drained (or never held any budget)."""
        return self.pool_seconds is not None and self.remaining_seconds <= 0.0

    def register_scan_time(self, scan_time: float) -> None:
        if self.pool_seconds is None:
            self.pool_seconds = self.scan_fraction * scan_time * self.n_queries

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self.pool_seconds is None:
            raise InvalidBudgetError(
                "BatchBudget with scan_fraction requires register_scan_time() "
                "before the first next_delta() call"
            )
        if full_work_time <= 0:
            return 1.0
        remaining = self.remaining_seconds
        if remaining <= 0.0:
            return 0.0
        delta = min(1.0, remaining / full_work_time)
        self.spent_seconds += delta * full_work_time
        return delta

    def describe(self) -> str:
        if self.pool_seconds is not None:
            return (
                f"BatchBudget(n_queries={self.n_queries}, "
                f"pool={self.pool_seconds:.6f}s)"
            )
        return (
            f"BatchBudget(n_queries={self.n_queries}, "
            f"scan_fraction={self.scan_fraction})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
