"""Common interface implemented by every index in the library.

The benchmark harness, the execution engine, and the examples only rely on
this interface, so progressive indexes, adaptive (cracking) indexes and the
full-scan / full-index baselines are interchangeable:

* :meth:`BaseIndex.query` answers a predicate and, as a side effect, performs
  whatever indexing work the algorithm's budget allows.
* :attr:`BaseIndex.phase` exposes the life-cycle phase (baselines report
  ``CONVERGED`` or ``INACTIVE`` as appropriate).
* :attr:`BaseIndex.last_stats` exposes per-query bookkeeping (predicted cost,
  delta used, phase) consumed by the cost-model-validation experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.budget import FixedBudget, IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.cost_model import CostModel
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult
from repro.errors import IndexStateError
from repro.storage.column import Column


@dataclass
class QueryStats:
    """Bookkeeping recorded by an index for a single query.

    Attributes
    ----------
    query_number:
        1-based sequence number of the query against this index.
    phase:
        Phase the index was in when the query arrived.
    delta:
        Fraction of (remaining phase) work performed during this query;
        ``0`` for baselines and converged indexes.
    predicted_cost:
        Cost-model prediction for the query in seconds (``None`` when the
        algorithm has no cost model, e.g. cracking baselines).
    elements_indexed:
        Number of elements moved / refined / copied by the indexing work.
    """

    query_number: int = 0
    phase: IndexPhase = IndexPhase.INACTIVE
    delta: float = 0.0
    predicted_cost: float | None = None
    elements_indexed: int = 0
    notes: dict = field(default_factory=dict)


class BaseIndex(abc.ABC):
    """Abstract base class of all indexes.

    Parameters
    ----------
    column:
        The column to index.
    budget:
        Indexing-budget controller; defaults to a fixed ``delta = 0.1``.
        Baselines ignore the budget.
    constants:
        Machine constants for the cost model; defaults to the deterministic
        simulated constants.
    """

    #: Short, unique identifier used in reports (e.g. ``"PQ"``, ``"STD"``).
    name: str = "base"
    #: Longer human-readable description.
    description: str = ""
    #: Whether the batch executor should call :meth:`search_many` right away
    #: instead of first driving per-query progressive work.  True for
    #: algorithms whose batched answering already performs (or needs) no
    #: budgeted refinement: cracking variants and the non-adaptive baselines.
    eager_batch: bool = False

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
    ) -> None:
        if not isinstance(column, Column):
            column = Column(column)
        self._column = column
        self._budget = budget or FixedBudget(0.1)
        self._cost_model = CostModel(constants)
        self._queries_executed = 0
        self.last_stats = QueryStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def column(self) -> Column:
        """The column this index answers queries for."""
        return self._column

    @property
    def budget(self) -> IndexingBudget:
        """The indexing-budget controller in use."""
        return self._budget

    def swap_budget(self, budget: IndexingBudget) -> IndexingBudget:
        """Install ``budget`` and return the previously installed controller.

        The batch executor uses this to temporarily replace a per-query
        budget with a pooled :class:`~repro.core.budget.BatchBudget` for the
        duration of one batch, restoring the original afterwards.
        """
        if not isinstance(budget, IndexingBudget):
            raise IndexStateError(
                f"swap_budget() expects an IndexingBudget, got {type(budget).__name__}"
            )
        previous = self._budget
        self._budget = budget
        return previous

    @property
    def cost_model(self) -> CostModel:
        """The cost model parameterised with this index's constants."""
        return self._cost_model

    @property
    def queries_executed(self) -> int:
        """Number of queries answered so far."""
        return self._queries_executed

    @property
    @abc.abstractmethod
    def phase(self) -> IndexPhase:
        """Current life-cycle phase."""

    @property
    def converged(self) -> bool:
        """Whether the index is fully built (no further indexing work)."""
        return self.phase is IndexPhase.CONVERGED

    def query(self, predicate: Predicate) -> QueryResult:
        """Answer ``predicate``, spending at most the budgeted indexing time.

        Returns the exact aggregate over the column regardless of how much of
        the index has been built.
        """
        if not isinstance(predicate, Predicate):
            raise IndexStateError(
                f"query() expects a Predicate, got {type(predicate).__name__}"
            )
        self._queries_executed += 1
        self.last_stats = QueryStats(
            query_number=self._queries_executed, phase=self.phase
        )
        result = self._execute(predicate)
        return result

    def search_many(self, lows, highs):
        """Answer a batch of range predicates with vectorized lookups.

        Parameters
        ----------
        lows, highs:
            Parallel arrays of inclusive bounds, one entry per query.

        Returns
        -------
        tuple or None
            ``(sums, counts)`` arrays aligned with the input bounds, or
            ``None`` when the index cannot (yet) answer batches vectorized —
            e.g. a progressive index that is still mid-construction.  Callers
            fall back to per-query :meth:`query` dispatch on ``None``.

        Notes
        -----
        Unlike :meth:`query`, batched answering performs no budgeted
        progressive refinement and does not advance ``queries_executed``;
        the batch executor accounts for the batch as one bulk operation.
        """
        return None

    def predict_cost(self, predicate: Predicate) -> float | None:
        """Cost-model prediction of the next query's total time, if available.

        The default implementation returns ``None``; progressive indexes
        override it with their per-phase formulas.
        """
        return None

    def memory_footprint(self) -> int:
        """Approximate additional memory used by the index, in bytes.

        The default accounts for nothing; concrete indexes override it.
        """
        return 0

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return f"{self.name}: {self.description or type(self).__name__}"

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(self, predicate: Predicate) -> QueryResult:
        """Answer the predicate and perform budgeted indexing work."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _scan_column(self, predicate: Predicate, start: int = 0, stop: int | None = None) -> QueryResult:
        """Predicated scan of (part of) the base column."""
        value_sum, count = self._column.scan_range(
            predicate.low, predicate.high, start=start, stop=stop
        )
        return QueryResult(value_sum, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(name={self.name!r}, phase={self.phase.value!r}, "
            f"queries={self._queries_executed})"
        )
