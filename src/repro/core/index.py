"""Common interface implemented by every index in the library.

The benchmark harness, the execution engine, and the examples only rely on
this interface, so progressive indexes, adaptive (cracking) indexes and the
full-scan / full-index baselines are interchangeable:

* :meth:`BaseIndex.query` answers a predicate and, as a side effect, performs
  whatever indexing work the algorithm's budget policy allows.
* :attr:`BaseIndex.phase` exposes the life-cycle phase, driven by the shared
  :class:`~repro.core.phase.IndexLifecycle` (baselines report ``CONVERGED``
  or ``INACTIVE`` as appropriate).
* :attr:`BaseIndex.last_stats` exposes per-query bookkeeping (predicted cost,
  delta used, phase) consumed by the cost-model-validation experiments.

Every budget decision flows through the index's
:class:`~repro.core.policy.BudgetController`: the per-phase execute methods
describe the query's cost as a function of ``delta`` (via
:meth:`BaseIndex.predicted_cost`) and the controller asks the installed
:class:`~repro.core.policy.BudgetPolicy` — fixed, time-adaptive,
cost-model-greedy, or a pooled batch reservoir — for the fraction of the
remaining phase work this query should perform.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable

from repro import obs

from repro.core.budget import FixedBudget
from repro.core.calibration import CostConstants
from repro.core.cost_model import CostBreakdown, CostModel
from repro.core.overlay import DeltaOverlay
from repro.core.phase import IndexLifecycle, IndexPhase
from repro.core.policy import (
    BudgetController,
    BudgetPolicy,
    DeltaDecision,
    DeltaRequest,
    policy_from_state,
    policy_state_dict,
)
from repro.core.query import Predicate, QueryResult
from repro.errors import IndexStateError
from repro.storage.column import Column, ColumnSnapshot
from repro.storage.lazy import ChainArray, is_lazy


def _snapshot_is_compressed(snapshot) -> bool:
    """Whether the snapshot reads through a compressed paged base.

    A raw ``np.memmap`` base decompresses nothing (the page cache serves
    it directly), so only paged views of v2 compressed files — alone or as
    a part of a chained snapshot — carry the decompression surcharge.
    """
    data = getattr(snapshot, "_data", None)
    if data is None or not is_lazy(data):
        return False
    parts = data.parts if isinstance(data, ChainArray) else (data,)
    return any(hasattr(part, "reader") for part in parts)


#: Stable tracer singleton; hot paths read one attribute (``.enabled``)
#: per query when the detailed trace mode is off.
_TR = obs.tracer()

#: Duration-sampling period for converged steady-state reads.  While an
#: index is under construction every query is timed (the budgeted work
#: dwarfs the timer), but once converged a query is a bare structure probe
#: and two clock reads plus a histogram observe would be the largest
#: non-essential cost on the hottest path — so only every Nth converged
#: read is timed.  Query *counts* stay exact: they come from the
#: ``index.queries`` pull series, not from histogram totals.
_OBS_SAMPLE_EVERY = 7


@dataclass
class QueryStats:
    """Bookkeeping recorded by an index for a single query.

    Attributes
    ----------
    query_number:
        1-based sequence number of the query against this index.
    phase:
        Phase the index was in when the query arrived.
    delta:
        Fraction of (remaining phase) work performed during this query;
        ``0`` for baselines and converged indexes.
    predicted_cost:
        Cost-model prediction for the query in seconds (``None`` when the
        algorithm has no cost model, e.g. cracking baselines).
    predicted_breakdown:
        The full scan/lookup/indexing split of the prediction, when the
        decision was made from a per-phase cost function.
    elements_indexed:
        Number of elements moved / refined / copied by the indexing work.
    """

    query_number: int = 0
    phase: IndexPhase = IndexPhase.INACTIVE
    delta: float = 0.0
    predicted_cost: float | None = None
    predicted_breakdown: CostBreakdown | None = None
    elements_indexed: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def indexing_seconds(self) -> float:
        """Predicted budgeted work this query spent (``0`` if unknown).

        Construction *and* delta-merge budget: both are paid out of the
        same per-query indexing allowance.
        """
        if self.predicted_breakdown is None:
            return 0.0
        return self.predicted_breakdown.maintenance


class BaseIndex(DeltaOverlay, abc.ABC):
    """Abstract base class of all indexes.

    Every index builds its structures against an immutable
    :class:`~repro.storage.column.ColumnSnapshot` pinned at construction
    time (``self._column`` — subclasses never see mutable state), while the
    live mutable :class:`~repro.storage.column.Column` is tracked by the
    shared :class:`~repro.core.overlay.DeltaOverlay` mixin: every
    :meth:`query` and :meth:`search_many` answer is corrected with the
    delta-store writes the structures have not absorbed yet, and converged
    foldable families progressively merge those writes in under the same
    budget policies that paced construction.

    Parameters
    ----------
    column:
        The column to index: a live :class:`~repro.storage.column.Column`
        (mutable behavior via the delta overlay), a frozen
        :class:`~repro.storage.column.ColumnSnapshot` (immutable), or raw
        array-like data (wrapped into a live column).
    budget:
        Budget policy (or legacy budget controller object); defaults to a
        fixed ``delta = 0.1``.  Baselines ignore the budget.
    constants:
        Machine constants for the cost model; defaults to the deterministic
        simulated constants.
    """

    #: Short, unique identifier used in reports (e.g. ``"PQ"``, ``"STD"``).
    name: str = "base"
    #: Longer human-readable description.
    description: str = ""
    #: Whether the batch executor should call :meth:`search_many` right away
    #: instead of first driving per-query progressive work.  True for
    #: algorithms whose batched answering already performs (or needs) no
    #: budgeted refinement: cracking variants and the non-adaptive baselines.
    eager_batch: bool = False
    #: Whether a *converged* instance's structural batch lookups
    #: (:meth:`_search_many`) are safe to run from concurrent reader threads
    #: without serialization.  True for families whose converged read path
    #: only consults frozen structures plus idempotent caches (progressive
    #: sort/cascade families, the full-scan/full-index baselines); False for
    #: families that reorganise data *on every read* (cracking), which the
    #: serving scheduler always routes through the exclusive work lane.
    concurrent_reads: bool = False

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
    ) -> None:
        if isinstance(column, ColumnSnapshot):
            live = None
            snapshot = column
        else:
            if not isinstance(column, Column):
                column = Column(column)
            live = column
            snapshot = column.snapshot()
        #: The pinned snapshot all structural reads go through.  Subclasses
        #: use ``self._column`` exactly as they did when columns were
        #: immutable; writes after the pin are the overlay's concern.
        self._column = snapshot
        self._controller = BudgetController(budget or FixedBudget(0.1))
        self._cost_model = CostModel(constants)
        self._lifecycle = IndexLifecycle()
        self._queries_executed = 0
        self.last_stats = QueryStats()
        # Paged compressed bases add a per-element decode cost on every
        # scan; expressed as a fraction of the scan-time constant so one
        # wrap point (_decide / predict_cost) prices it into every family's
        # phase formula without touching the formulas themselves.
        constants_eff = self._cost_model.constants
        if _snapshot_is_compressed(snapshot):
            self._decompress_ratio = self._cost_model.decompress_time(
                constants_eff.gamma
            ) / constants_eff.omega
        else:
            self._decompress_ratio = 0.0
        # Observability: one duration histogram and one actual/predicted
        # ratio histogram per algorithm, shared across instances via the
        # registry's idempotent lookup.  A disabled registry hands back a
        # falsy no-op, which the query hot path uses to skip its timers.
        registry = obs.metrics()
        self._obs_query_seconds = registry.histogram(
            "index.query.seconds",
            help=(
                "End-to-end index.query() latency including budgeted work "
                "(converged steady-state reads sampled 1:%d)" % _OBS_SAMPLE_EVERY
            ),
            algorithm=self.name,
        )
        self._obs_sample_tick = 1
        self._obs_tau_ratio = registry.histogram(
            "index.tau.ratio",
            help="Actual / predicted query cost (tau-miss debugging)",
            edges=obs.RATIO_EDGES,
            algorithm=self.name,
        )
        self._init_overlay(live, snapshot)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def column(self) -> Column:
        """The column this index answers queries for.

        The live mutable column when the index was created from one, else
        the frozen snapshot it was pinned to.
        """
        return self._live if self._live is not None else self._column

    @property
    def base(self) -> ColumnSnapshot:
        """The pinned snapshot the index structures were built against."""
        return self._column

    @property
    def budget(self) -> BudgetPolicy:
        """The budget policy currently installed in the controller."""
        return self._controller.policy

    @property
    def controller(self) -> BudgetController:
        """The budget controller every delta decision routes through."""
        return self._controller

    @property
    def lifecycle(self) -> IndexLifecycle:
        """The shared phase-transition driver (history and per-phase stats)."""
        return self._lifecycle

    def swap_budget(self, budget: BudgetPolicy) -> BudgetPolicy:
        """Install ``budget`` and return the previously installed policy.

        The batch executor uses this to temporarily replace a per-query
        policy with a pooled :class:`~repro.core.policy.BatchPool` for the
        duration of one batch, restoring the original afterwards.
        """
        if not isinstance(budget, BudgetPolicy):
            raise IndexStateError(
                f"swap_budget() expects a BudgetPolicy, got {type(budget).__name__}"
            )
        return self._controller.swap_policy(budget)

    @property
    def cost_model(self) -> CostModel:
        """The cost model parameterised with this index's constants."""
        return self._cost_model

    @property
    def queries_executed(self) -> int:
        """Number of queries answered so far."""
        return self._queries_executed

    @property
    def phase(self) -> IndexPhase:
        """Current life-cycle phase."""
        return self._lifecycle.phase

    @property
    def converged(self) -> bool:
        """Whether the index is fully built (no further indexing work)."""
        return self.phase is IndexPhase.CONVERGED

    def query(self, predicate: Predicate) -> QueryResult:
        """Answer ``predicate``, spending at most the budgeted indexing time.

        Returns the exact aggregate over the column's *currently visible*
        rows regardless of how much of the index has been built: the
        structural answer over the pinned snapshot is corrected with the
        pending delta-store writes, and — for converged foldable indexes —
        part of the budget is spent progressively merging those writes in
        (the ``MERGE`` life-cycle stage).
        """
        if not isinstance(predicate, Predicate):
            raise IndexStateError(
                f"query() expects a Predicate, got {type(predicate).__name__}"
            )
        hist = self._obs_query_seconds
        tracing = _TR.enabled
        t0 = 0.0
        if tracing or (hist and self._lifecycle.phase is not IndexPhase.CONVERGED):
            t0 = perf_counter()
        elif hist:
            tick = self._obs_sample_tick - 1
            if tick <= 0:
                self._obs_sample_tick = _OBS_SAMPLE_EVERY
                t0 = perf_counter()
            else:
                self._obs_sample_tick = tick
        qspan = None
        if tracing:
            qspan = _TR.start("index.query", {
                "column": getattr(self._column, "name", None),
                "algorithm": self.name,
            })
        try:
            self._queries_executed += 1
            self.last_stats = QueryStats(
                query_number=self._queries_executed, phase=self.phase
            )
            started = self._controller.query_started()
            espan = _TR.start("phase.execute") if tracing else None
            result = self._execute(predicate)
            if espan is not None:
                arrival = self.last_stats.phase
                ran = self.phase if arrival is IndexPhase.INACTIVE else arrival
                espan.rename(f"phase.{ran.value}").set(
                    delta=self.last_stats.delta,
                    elements_indexed=self.last_stats.elements_indexed,
                ).end()
            if self._overlay_active():
                cspan = _TR.start("overlay.correct") if tracing else None
                correction = self._overlay_correction(predicate)
                if cspan is not None:
                    cspan.end()
                if correction is not None:
                    result = result + correction
                # Maintenance runs strictly after the correction: a fold
                # changes the watermark the *next* query's correction is
                # computed from.
                mspan = _TR.start("overlay.merge") if tracing else None
                self._merge_maintenance(predicate)
                if mspan is not None:
                    mspan.end()
            self._controller.query_finished(started, self.last_stats.predicted_cost)
            self._lifecycle.note_query(
                self.last_stats.phase, self.last_stats.indexing_seconds
            )
        finally:
            if qspan is not None:
                stats = self.last_stats
                qspan.set(
                    phase=stats.phase.value,
                    delta=stats.delta,
                    predicted_cost=stats.predicted_cost,
                    query_number=stats.query_number,
                ).end()
        if hist and t0:
            elapsed = perf_counter() - t0
            hist.observe(elapsed)
            stats = self.last_stats
            # The tau ratio tracks the cost model's prediction error while
            # the model is steering construction; converged steady-state
            # reads make no delta decision, so charging them an extra
            # observe would only tax the hottest path.
            if stats.predicted_cost and stats.phase is not IndexPhase.CONVERGED:
                self._obs_tau_ratio.observe(elapsed / stats.predicted_cost)
        return result

    def search_many(self, lows, highs):
        """Answer a batch of range predicates with vectorized lookups.

        Parameters
        ----------
        lows, highs:
            Parallel arrays of inclusive bounds, one entry per query.

        Returns
        -------
        tuple or None
            ``(sums, counts)`` arrays aligned with the input bounds, or
            ``None`` when the index cannot (yet) answer batches vectorized —
            e.g. a progressive index that is still mid-construction.  Callers
            fall back to per-query :meth:`query` dispatch on ``None``.

        Notes
        -----
        Unlike :meth:`query`, batched answering performs no budgeted
        progressive refinement and does not advance ``queries_executed``;
        the batch executor accounts for the batch as one bulk operation.
        The structural batch answer (:meth:`_search_many`) is corrected for
        pending delta-store writes before being returned.
        """
        answered = self._search_many(lows, highs)
        if answered is None:
            return None
        return self._overlay_correct_many(lows, highs, answered)

    def _search_many(self, lows, highs):
        """Family-specific vectorized batch answering over the snapshot.

        The default cannot answer batches; subclasses override this (never
        the public :meth:`search_many`, which owns the delta correction).
        """
        return None

    def predicted_cost(self, predicate: Predicate, delta: float = 0.0) -> CostBreakdown | None:
        """Cost-model prediction for ``predicate`` at indexing fraction ``delta``.

        Progressive indexes answer with their current phase's formula from
        Section 3 of the paper; the default returns ``None`` for algorithms
        without a per-phase cost model (e.g. cracking baselines).  The
        prediction is side-effect free — no indexing work is performed.
        """
        return None

    def predict_cost(self, predicate: Predicate) -> float | None:
        """Total predicted time of the next query without indexing work.

        For paged compressed bases the scan share carries its decompression
        surcharge, so the serving scheduler's tau admission sees the real
        out-of-core cost.
        """
        breakdown = self._price_decompression(self.predicted_cost(predicate, 0.0))
        return None if breakdown is None else breakdown.total

    def _price_decompression(self, breakdown: CostBreakdown | None) -> CostBreakdown | None:
        """Add the paged-base decode surcharge to a prediction's scan share."""
        if breakdown is None or self._decompress_ratio == 0.0:
            return breakdown
        return replace(breakdown, decompress=breakdown.scan * self._decompress_ratio)

    def memory_footprint(self) -> int:
        """Approximate additional memory used by the index, in bytes.

        The default accounts for nothing; concrete indexes override it.
        """
        return 0

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return f"{self.name}: {self.description or type(self).__name__}"

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    #: Version stamp of the ``state_dict`` layout.
    STATE_FORMAT = 1

    def state_dict(self) -> dict:
        """Serializable snapshot of the index: phase, budget and structures.

        The returned tree contains only JSON-able scalars and NumPy arrays
        (see :func:`repro.persist.pager.encode_state`), never live objects,
        so a checkpoint can be written and read without pickle.  Loading it
        into a freshly constructed index over the same column
        (:meth:`load_state`) resumes construction exactly where it stood:
        the life-cycle phase, the budget policy's learned corrections, the
        delta-overlay buffers and the family-specific structures all
        survive, so a restarted index never falls back to the RAW phase.
        """
        return {
            "format": self.STATE_FORMAT,
            "algorithm": self.name,
            "class": type(self).__name__,
            "queries_executed": int(self._queries_executed),
            "lifecycle": self._lifecycle.state_dict(),
            "policy": policy_state_dict(self._controller.policy),
            "scan_time": self._controller._scan_time,
            "overlay": self._overlay_state(),
            "family": self._family_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this (fresh) index.

        The index must have been constructed over the same logical column
        the state was captured from; the pinned snapshot is re-taken at the
        checkpointed version, so structures and overlay watermarks agree
        even when the live column has newer (WAL-replayed) writes on top.
        """
        if state.get("algorithm") != self.name:
            raise IndexStateError(
                f"checkpoint state belongs to algorithm {state.get('algorithm')!r}, "
                f"cannot load into {self.name!r}"
            )
        overlay = state.get("overlay", {})
        snapshot_version = int(overlay.get("snapshot_version", 0))
        if self._live is not None and snapshot_version != self._column.version:
            self._column = self._live.snapshot(snapshot_version)
        self._queries_executed = int(state.get("queries_executed", 0))
        self._lifecycle.load_state(state["lifecycle"])
        self._controller = BudgetController(policy_from_state(state["policy"]))
        scan_time = state.get("scan_time")
        if scan_time is not None:
            self._controller.register_scan_time(float(scan_time))
        self._load_overlay_state(overlay)
        self._load_family_state(state.get("family", {}))
        self.last_stats = QueryStats()

    def _family_state(self) -> dict:
        """Family-specific structure payload; default has none (FullScan)."""
        return {}

    def _load_family_state(self, state: dict) -> None:
        """Restore the family-specific payload; default no-op."""

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(self, predicate: Predicate) -> QueryResult:
        """Answer the predicate and perform budgeted indexing work."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _advance_phase(self, phase: IndexPhase) -> None:
        """Move the lifecycle to ``phase``, stamped with the current query."""
        self._lifecycle.advance(phase, self._queries_executed)

    def _register_scan_time(self) -> None:
        """Resolve fraction-based budget policies against the scan cost."""
        self._controller.register_scan_time(
            self._cost_model.scan_time(len(self._column))
            * (1.0 + self._decompress_ratio)
        )

    def _decide(
        self,
        full_work_time: float,
        predict: Callable[[float], CostBreakdown],
        max_delta: float = 1.0,
    ) -> DeltaDecision:
        """Route one delta decision through the budget controller.

        ``predict`` is the current phase's cost formula as a function of
        ``delta``; its ``delta = 0`` evaluation is the query's base cost.
        The chosen delta and the prediction at that delta are recorded in
        :attr:`last_stats`.
        """
        if self._decompress_ratio:
            family_predict = predict

            def predict(delta: float) -> CostBreakdown:  # noqa: F811
                return self._price_decompression(family_predict(delta))

        request = DeltaRequest(
            full_work_time=full_work_time,
            base_cost=predict(0.0),
            predict=predict,
            max_delta=max_delta,
            n_elements=len(self._column),
            phase=self.phase,
        )
        decision = self._controller.decide(request)
        self.last_stats.delta = decision.delta
        self.last_stats.predicted_breakdown = decision.predicted
        self.last_stats.predicted_cost = decision.predicted_seconds
        if _TR.enabled:
            span = _TR.current()
            if span is not None:
                predicted = decision.predicted
                span.add_decision({
                    "phase": self.phase.value,
                    "delta": decision.delta,
                    "predicted_seconds": decision.predicted_seconds,
                    "breakdown": None if predicted is None else {
                        "scan": predicted.scan,
                        "lookup": predicted.lookup,
                        "indexing": predicted.indexing,
                        "merge": predicted.merge,
                        "decompress": predicted.decompress,
                        "total": predicted.total,
                    },
                })
        return decision

    def _scan_column(self, predicate: Predicate, start: int = 0, stop: int | None = None) -> QueryResult:
        """Predicated scan of (part of) the base column."""
        value_sum, count = self._column.scan_range(
            predicate.low, predicate.high, start=start, stop=stop
        )
        return QueryResult(value_sum, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(name={self.name!r}, phase={self.phase.value!r}, "
            f"queries={self._queries_executed})"
        )
