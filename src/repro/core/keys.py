"""Order-preserving key codecs and radix key spaces.

Every construction kernel that clusters by *bits* — the LSD/MSD radix passes,
their per-pass bucket routing and the point-query bucket lookups — must agree
on a single, totally ordered integer key space.  The seed implementation
derived radix keys by truncating values to integers, which silently destroys
the order of floating-point fractional parts (the ROADMAP's long-standing
"PLSD float columns are broken" defect).  This module provides the shared fix:

* :class:`IntKeyCodec` — ``int64`` values biased into ``uint64`` by flipping
  the sign bit (adding ``2^63``), an order-preserving bijection;
* :class:`FloatKeyCodec` — the classic IEEE-754 monotone bit-pattern
  transform: the raw ``float64`` bits with the sign bit flipped for
  non-negative values and *all* bits flipped for negative values.  The
  resulting ``uint64`` keys sort exactly like the floats they encode
  (``-0.0`` and ``+0.0`` map to adjacent keys, which is a valid sorted
  order for equal values);
* :class:`RadixKeySpace` — a codec anchored to a column's ``[min, max]``
  domain, exposing dtype-aware radix-digit extraction for both vectors and
  scalars.  All digits are taken from the *biased* key ``encode(v) -
  encode(min)``, so the number of passes for integer columns is identical to
  the seed's ``(max - min)`` formulation while float columns get exact
  64-bit ordering.

All vector maths stays in ``uint64`` (no signed overflow possible: biased
keys are non-negative and subtraction of the domain minimum is exact);
scalars are plain Python integers.
"""

from __future__ import annotations

import numpy as np

#: Bias turning an ``int64`` into an order-preserving ``uint64``.
_SIGN_BIT = 1 << 63

#: Largest encodable key.
_KEY_MASK = (1 << 64) - 1


class IntKeyCodec:
    """Order-preserving ``int64 -> uint64`` codec (sign-bit bias).

    ``encode`` is the bijection ``v -> v + 2^63`` (as 64-bit wrap-around),
    which maps the signed range monotonically onto ``[0, 2^64)``.
    """

    dtype = np.dtype(np.int64)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Vector of ``uint64`` keys ordered exactly like ``values``."""
        values = np.asarray(values)
        if values.dtype != np.int64:
            values = values.astype(np.int64)
        return values.astype(np.uint64) ^ np.uint64(_SIGN_BIT)

    def encode_scalar(self, value) -> int:
        """Key of a single (possibly fractional) bound as a Python int.

        Non-integral bounds are floored, which keeps the mapping monotone —
        exactly what bucket-range routing needs: any value ``v >= bound``
        satisfies ``encode(v) >= encode_scalar(bound)`` and any integer
        ``v <= bound`` satisfies ``encode(v) <= encode_scalar(bound)``.
        """
        key = int(np.floor(value)) + _SIGN_BIT
        return min(max(key, 0), _KEY_MASK)


class FloatKeyCodec:
    """Order-preserving ``float64 -> uint64`` codec (IEEE-754 bit trick)."""

    dtype = np.dtype(np.float64)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Vector of ``uint64`` keys ordered exactly like ``values``."""
        values = np.asarray(values)
        if values.dtype != np.float64:
            values = values.astype(np.float64)
        bits = np.ascontiguousarray(values).view(np.uint64)
        negative = (bits >> np.uint64(63)) == np.uint64(1)
        return np.where(negative, ~bits, bits ^ np.uint64(_SIGN_BIT))

    def encode_scalar(self, value) -> int:
        """Key of a single bound as a Python int (exact, no rounding)."""
        bits = int(np.float64(value).view(np.uint64))
        if bits >> 63:
            return _KEY_MASK ^ bits
        return bits ^ _SIGN_BIT


def codec_for(dtype) -> "IntKeyCodec | FloatKeyCodec":
    """The order-preserving codec for a column dtype."""
    dtype = np.dtype(dtype)
    if dtype.kind in ("i", "u", "b"):
        return IntKeyCodec()
    if dtype.kind == "f":
        return FloatKeyCodec()
    raise TypeError(f"no order-preserving key codec for dtype {dtype}")


class RadixKeySpace:
    """Radix key space anchored to a column's value domain.

    Parameters
    ----------
    column_min, column_max:
        Value domain of the column (inclusive).
    dtype:
        Column dtype; selects the codec.
    bits_per_digit:
        ``log2`` of the radix fan-out ``b``.

    Attributes
    ----------
    total_bits:
        Number of significant bits of ``encode(max) - encode(min)``; the
        paper's ``log2(max - min)`` generalised to any encodable dtype.
    n_digits:
        Number of radix passes required to fully order the domain
        (``ceil(total_bits / bits_per_digit)``).
    """

    def __init__(self, column_min, column_max, dtype, bits_per_digit: int) -> None:
        if bits_per_digit < 1:
            raise ValueError(f"bits_per_digit must be positive, got {bits_per_digit}")
        self.codec = codec_for(dtype)
        self.bits_per_digit = int(bits_per_digit)
        self.key_min = self.codec.encode_scalar(column_min)
        self.key_max = self.codec.encode_scalar(column_max)
        if self.key_max < self.key_min:
            raise ValueError(f"invalid domain [{column_min!r}, {column_max!r}]")
        self.domain = self.key_max - self.key_min
        self.total_bits = max(1, self.domain.bit_length())
        self.n_digits = -(-self.total_bits // self.bits_per_digit)
        self._digit_mask = (1 << self.bits_per_digit) - 1

    # ------------------------------------------------------------------
    @property
    def top_shift(self) -> int:
        """Shift selecting the most significant digit (MSD bucket routing)."""
        return max(0, self.total_bits - self.bits_per_digit)

    def relative_keys(self, values: np.ndarray) -> np.ndarray:
        """Biased keys ``encode(values) - encode(min)`` as ``uint64``."""
        return self.codec.encode(values) - np.uint64(self.key_min)

    def relative_key(self, value) -> int:
        """Biased key of a scalar bound, clamped into ``[0, domain]``.

        Clamping keeps out-of-domain predicate bounds routable: the bucket
        scans re-check actual values, so an overapproximated bucket is safe.
        """
        key = self.codec.encode_scalar(value) - self.key_min
        return min(max(key, 0), self.domain)

    # ------------------------------------------------------------------
    def digit(self, values: np.ndarray, digit_number: int) -> np.ndarray:
        """The ``digit_number``-th radix digit (LSD order) of every value.

        Returns an ``int64`` vector in ``[0, 2^bits_per_digit)`` suitable for
        bucket indexing and ``np.bincount``.
        """
        shift = np.uint64(digit_number * self.bits_per_digit)
        digits = (self.relative_keys(values) >> shift) & np.uint64(self._digit_mask)
        return digits.astype(np.int64)

    def digit_scalar(self, value, digit_number: int) -> int:
        """The ``digit_number``-th radix digit of one (clamped) bound."""
        return (self.relative_key(value) >> (digit_number * self.bits_per_digit)) & self._digit_mask

    def shifted(self, values: np.ndarray, shift: int) -> np.ndarray:
        """Biased keys right-shifted by ``shift`` bits (MSD node routing)."""
        return (self.relative_keys(values) >> np.uint64(shift)).astype(np.int64)
