"""Query model: range/point predicates and query results.

The paper's workloads consist of queries of the form::

    SELECT SUM(R.A) FROM R WHERE R.A BETWEEN V1 AND V2

Point queries are the special case ``V1 == V2``.  A :class:`Predicate`
captures the inclusive range ``[low, high]``; a :class:`QueryResult` carries
the aggregate answer (sum and count of matching values) so that any two index
implementations can be cross-checked for exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidPredicateError


@dataclass(frozen=True)
class Predicate:
    """An inclusive range predicate ``low <= value <= high``.

    Attributes
    ----------
    low, high:
        Inclusive bounds of the selection.  ``low == high`` denotes a point
        query.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise InvalidPredicateError(
                f"predicate lower bound {self.low!r} exceeds upper bound {self.high!r}"
            )

    @property
    def is_point(self) -> bool:
        """Whether this predicate selects a single value."""
        return self.low == self.high

    def width(self) -> float:
        """Width of the selected range (zero for point queries)."""
        return self.high - self.low

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of ``values`` matching the predicate (predicated)."""
        return (values >= self.low) & (values <= self.high)

    def selectivity(self, domain_low: float, domain_high: float) -> float:
        """Approximate selectivity against a uniform domain ``[low, high]``."""
        domain = domain_high - domain_low
        if domain <= 0:
            return 1.0
        return min(1.0, max(0.0, self.width() / domain))

    def __repr__(self) -> str:
        if self.is_point:
            return f"Predicate(point={self.low!r})"
        return f"Predicate(low={self.low!r}, high={self.high!r})"


def range_query(low: float, high: float) -> Predicate:
    """Build a range predicate ``low <= value <= high``."""
    return Predicate(low, high)


def point(value: float) -> Predicate:
    """Build a point predicate ``value == x``."""
    return Predicate(value, value)


@dataclass
class QueryResult:
    """Aggregate answer to a predicate.

    Attributes
    ----------
    value_sum:
        Sum of all values matching the predicate (``SELECT SUM``).
    count:
        Number of matching values.
    """

    value_sum: float
    count: int

    def __add__(self, other: "QueryResult") -> "QueryResult":
        if not isinstance(other, QueryResult):
            return NotImplemented
        return QueryResult(self.value_sum + other.value_sum, self.count + other.count)

    def __iadd__(self, other: "QueryResult") -> "QueryResult":
        if not isinstance(other, QueryResult):
            return NotImplemented
        self.value_sum = self.value_sum + other.value_sum
        self.count += other.count
        return self

    def approximately_equals(self, other: "QueryResult", rel_tol: float = 1e-9) -> bool:
        """Whether two results agree (exact count, numerically equal sums)."""
        if self.count != other.count:
            return False
        if self.value_sum == other.value_sum:
            return True
        denominator = max(abs(self.value_sum), abs(other.value_sum), 1.0)
        return abs(self.value_sum - other.value_sum) / denominator <= rel_tol

    @classmethod
    def empty(cls) -> "QueryResult":
        """A result with no matching rows."""
        return cls(0, 0)

    @classmethod
    def from_values(cls, values: np.ndarray) -> "QueryResult":
        """Aggregate a vector of already-filtered values."""
        if values.size == 0:
            return cls.empty()
        return cls(values.sum(), int(values.size))

    @classmethod
    def from_masked(cls, values: np.ndarray, mask: np.ndarray) -> "QueryResult":
        """Aggregate ``values[mask]`` without allocating when empty."""
        count = int(np.count_nonzero(mask))
        if count == 0:
            return cls.empty()
        return cls(values[mask].sum(), count)
