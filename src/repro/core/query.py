"""Query model: range/point predicates and query results.

The paper's workloads consist of queries of the form::

    SELECT SUM(R.A) FROM R WHERE R.A BETWEEN V1 AND V2

Point queries are the special case ``V1 == V2``.  A :class:`Predicate`
captures the inclusive range ``[low, high]``; a :class:`QueryResult` carries
the aggregate answer (sum and count of matching values) so that any two index
implementations can be cross-checked for exactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import InvalidPredicateError


@dataclass(frozen=True)
class Predicate:
    """An inclusive range predicate ``low <= value <= high``.

    Attributes
    ----------
    low, high:
        Inclusive bounds of the selection.  ``low == high`` denotes a point
        query.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise InvalidPredicateError(
                f"predicate lower bound {self.low!r} exceeds upper bound {self.high!r}"
            )

    @property
    def is_point(self) -> bool:
        """Whether this predicate selects a single value."""
        return self.low == self.high

    def width(self) -> float:
        """Width of the selected range (zero for point queries)."""
        return self.high - self.low

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of ``values`` matching the predicate (predicated)."""
        return (values >= self.low) & (values <= self.high)

    def selectivity(self, domain_low: float, domain_high: float) -> float:
        """Approximate selectivity against a uniform domain ``[low, high]``."""
        domain = domain_high - domain_low
        if domain <= 0:
            return 1.0
        return min(1.0, max(0.0, self.width() / domain))

    def __repr__(self) -> str:
        if self.is_point:
            return f"Predicate(point={self.low!r})"
        return f"Predicate(low={self.low!r}, high={self.high!r})"


def range_query(low: float, high: float) -> Predicate:
    """Build a range predicate ``low <= value <= high``."""
    return Predicate(low, high)


def point(value: float) -> Predicate:
    """Build a point predicate ``value == x``."""
    return Predicate(value, value)


@dataclass
class QueryResult:
    """Aggregate answer to a predicate.

    Attributes
    ----------
    value_sum:
        Sum of all values matching the predicate (``SELECT SUM``).
    count:
        Number of matching values.
    """

    value_sum: float
    count: int

    def __add__(self, other: "QueryResult") -> "QueryResult":
        if not isinstance(other, QueryResult):
            return NotImplemented
        return QueryResult(self.value_sum + other.value_sum, self.count + other.count)

    def __iadd__(self, other: "QueryResult") -> "QueryResult":
        if not isinstance(other, QueryResult):
            return NotImplemented
        self.value_sum = self.value_sum + other.value_sum
        self.count += other.count
        return self

    def approximately_equals(self, other: "QueryResult", rel_tol: float = 1e-9) -> bool:
        """Whether two results agree (exact count, numerically equal sums)."""
        if self.count != other.count:
            return False
        if self.value_sum == other.value_sum:
            return True
        denominator = max(abs(self.value_sum), abs(other.value_sum), 1.0)
        return abs(self.value_sum - other.value_sum) / denominator <= rel_tol

    @classmethod
    def empty(cls) -> "QueryResult":
        """A result with no matching rows."""
        return cls(0, 0)

    @classmethod
    def from_values(cls, values: np.ndarray) -> "QueryResult":
        """Aggregate a vector of already-filtered values."""
        if values.size == 0:
            return cls.empty()
        return cls(values.sum(), int(values.size))

    @classmethod
    def from_masked(cls, values: np.ndarray, mask: np.ndarray) -> "QueryResult":
        """Aggregate ``values[mask]`` without allocating when empty."""
        count = int(np.count_nonzero(mask))
        if count == 0:
            return cls.empty()
        return cls(values[mask].sum(), count)


class PredicateVector:
    """A batch of inclusive range predicates stored as parallel arrays.

    The batch execution engine operates on whole workloads at once; storing
    the bounds as two NumPy arrays lets an index answer every query of the
    batch with a handful of vectorized calls (``np.searchsorted`` against a
    sorted array plus prefix-sum differences) instead of Python-level
    per-query dispatch.

    Parameters
    ----------
    lows, highs:
        Parallel sequences of inclusive bounds; every ``lows[i] <= highs[i]``.
    """

    def __init__(self, lows, highs) -> None:
        lows = np.atleast_1d(np.asarray(lows))
        highs = np.atleast_1d(np.asarray(highs))
        if lows.shape != highs.shape or lows.ndim != 1:
            raise InvalidPredicateError(
                f"lows and highs must be parallel one-dimensional sequences, "
                f"got shapes {lows.shape} and {highs.shape}"
            )
        if lows.size and bool(np.any(lows > highs)):
            bad = int(np.argmax(lows > highs))
            raise InvalidPredicateError(
                f"predicate {bad} has lower bound {lows[bad]!r} above upper "
                f"bound {highs[bad]!r}"
            )
        self.lows = lows
        self.highs = highs

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.lows.size)

    def __getitem__(self, index: int) -> Predicate:
        return Predicate(self.lows[index], self.highs[index])

    def __iter__(self) -> Iterator[Predicate]:
        for low, high in zip(self.lows, self.highs):
            yield Predicate(low, high)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PredicateVector(n={len(self)})"

    def slice(self, start: int, stop: Optional[int] = None) -> "PredicateVector":
        """The sub-batch ``[start:stop]`` (views, no copies)."""
        return PredicateVector(self.lows[start:stop], self.highs[start:stop])

    def predicates(self) -> List[Predicate]:
        """The batch as a list of scalar :class:`Predicate` objects."""
        return [Predicate(low, high) for low, high in zip(self.lows, self.highs)]

    # ------------------------------------------------------------------
    @classmethod
    def from_predicates(cls, predicates: Sequence[Predicate]) -> "PredicateVector":
        """Build a vector from scalar predicates (or ``(low, high)`` pairs)."""
        lows = []
        highs = []
        for predicate in predicates:
            if isinstance(predicate, Predicate):
                lows.append(predicate.low)
                highs.append(predicate.high)
            else:
                low, high = predicate
                lows.append(low)
                highs.append(high)
        return cls(np.asarray(lows), np.asarray(highs))

    @classmethod
    def coerce(cls, queries) -> "PredicateVector":
        """Accept a :class:`PredicateVector`, a workload, or a sequence."""
        if isinstance(queries, cls):
            return queries
        return cls.from_predicates(list(queries))


def search_sorted_many(segment: np.ndarray, lows, highs, prefix: np.ndarray | None = None):
    """Batched range aggregation over a sorted array.

    The shared vectorized primitive behind every ``search_many`` entry point:
    two ``np.searchsorted`` calls locate all query bounds at once and the
    per-query sums fall out of exclusive prefix-sum differences.

    Parameters
    ----------
    segment:
        Sorted one-dimensional array of values.
    lows, highs:
        Parallel arrays of inclusive query bounds.
    prefix:
        Optional exclusive prefix-sum array from a previous call over the
        same ``segment`` (``prefix[i] == segment[:i].sum()``); computed when
        omitted.

    Returns
    -------
    tuple
        ``(sums, counts, prefix)`` — per-query aggregates plus the prefix
        array, which callers cache to amortize across batches.
    """
    if prefix is None:
        prefix = np.empty(segment.size + 1, dtype=segment.dtype)
        prefix[0] = 0
        np.cumsum(segment, out=prefix[1:])
    lo = np.searchsorted(segment, np.asarray(lows), side="left")
    hi = np.searchsorted(segment, np.asarray(highs), side="right")
    hi = np.maximum(lo, hi)
    return prefix[hi] - prefix[lo], (hi - lo).astype(np.int64), prefix


@dataclass
class ConjunctionResult:
    """Answer to a multi-column conjunctive predicate (``session.where``).

    Attributes
    ----------
    count:
        Number of rows satisfying *all* column predicates.
    value_sums:
        Per-column sum of the matching rows, for every column referenced by
        the conjunction.
    driving_column:
        The column whose (progressive) index was used to drive the query
        plan, or ``None`` when the conjunction was answered by scans alone.
    """

    count: int
    value_sums: Dict[str, float] = field(default_factory=dict)
    driving_column: Optional[str] = None

    def sum_of(self, column_name: str) -> float:
        """Sum of ``column_name`` over the matching rows."""
        try:
            return self.value_sums[column_name]
        except KeyError:
            raise InvalidPredicateError(
                f"column {column_name!r} was not part of the conjunction; "
                f"available: {sorted(self.value_sums)}"
            ) from None

    def as_query_result(self, column_name: str) -> QueryResult:
        """The matching rows viewed as a single-column :class:`QueryResult`."""
        return QueryResult(self.sum_of(column_name), self.count)

    @classmethod
    def empty(cls, column_names: Sequence[str] = (), driving_column: Optional[str] = None) -> "ConjunctionResult":
        """A conjunction matching no rows."""
        return cls(0, {name: 0.0 for name in column_names}, driving_column)
