"""The canonical phases of a progressive index.

Section 3 of the paper defines three phases every progressive indexing
algorithm moves through:

``CREATION``
    The index is progressively populated from the base column; queries scan
    the not-yet-indexed tail of the column plus the partial index.
``REFINEMENT``
    All data lives in the index; queries only touch the index while it is
    progressively reorganised towards a fully sorted array.
``CONSOLIDATION``
    The sorted array is progressively turned into a B+-tree.
``CONVERGED``
    The B+-tree is complete; no further construction work is performed.
``MERGE``
    The mutable-substrate extension of the paper's life cycle: writes have
    landed in the column's delta store after the index converged, and
    queries now spend their indexing budget progressively *merging* those
    delta rows into the finished structures.  ``MERGE`` is the one phase a
    lifecycle may leave backwards (back to ``CONVERGED`` once the pending
    delta is folded in) — and re-enter when the next write burst arrives.

``INACTIVE`` is the state before the first query touches the column (no
memory has been allocated yet), matching the paper's premise that an index is
only initiated when its column is first queried.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.errors import IndexStateError


class IndexPhase(enum.Enum):
    """Life-cycle phase of a progressive index."""

    INACTIVE = "inactive"
    CREATION = "creation"
    REFINEMENT = "refinement"
    CONSOLIDATION = "consolidation"
    CONVERGED = "converged"
    MERGE = "merge"

    @property
    def does_indexing_work(self) -> bool:
        """Whether queries in this phase still spend budget on indexing."""
        return self in (
            IndexPhase.CREATION,
            IndexPhase.REFINEMENT,
            IndexPhase.CONSOLIDATION,
            IndexPhase.MERGE,
        )

    @property
    def order(self) -> int:
        """Monotone integer ordering of the phases (INACTIVE=0 .. CONVERGED=4)."""
        return _PHASE_ORDER[self]

    def __lt__(self, other: "IndexPhase") -> bool:
        if not isinstance(other, IndexPhase):
            return NotImplemented
        return self.order < other.order

    def __le__(self, other: "IndexPhase") -> bool:
        if not isinstance(other, IndexPhase):
            return NotImplemented
        return self.order <= other.order


_PHASE_ORDER = {
    IndexPhase.INACTIVE: 0,
    IndexPhase.CREATION: 1,
    IndexPhase.REFINEMENT: 2,
    IndexPhase.CONSOLIDATION: 3,
    IndexPhase.CONVERGED: 4,
    IndexPhase.MERGE: 5,
}


class IndexLifecycle:
    """Shared phase-transition driver of every index.

    The per-algorithm phase bookkeeping that used to be duplicated across
    the registry (each index carrying its own ``_phase`` attribute and
    hand-rolled transition checks) is centralised here: an index advances
    its lifecycle through :meth:`advance`, which enforces the paper's
    monotone phase order (an index never moves backwards), records the
    transition history, and accumulates per-phase usage statistics
    (queries answered and indexing budget spent per phase) surfaced by
    session stats and the experiment reports.

    Phases may be skipped forward — a baseline that bulk-builds jumps
    straight from ``INACTIVE`` to ``CONVERGED`` — but never revisited, with
    one deliberate exception introduced by the mutable column substrate:
    ``MERGE -> CONVERGED`` is a legal backward transition (folding the
    pending delta completes the merge and the index is fully built again),
    and ``CONVERGED -> MERGE`` may then happen again on the next write
    burst.  Construction phases remain strictly monotone.
    """

    def __init__(self, initial: IndexPhase = IndexPhase.INACTIVE) -> None:
        self._phase = initial
        #: ``(query_number, phase)`` pairs, one per transition.
        self.transitions: List[Tuple[int, IndexPhase]] = []
        self._queries: Dict[IndexPhase, int] = {phase: 0 for phase in IndexPhase}
        self._indexing_seconds: Dict[IndexPhase, float] = {
            phase: 0.0 for phase in IndexPhase
        }
        # Optional callable invoked before any lifecycle mutation.  The
        # serving layer's scheduler installs one that asserts the calling
        # thread holds the index's exclusive work lane, turning an
        # unserialized phase advance (a concurrency bug) into a hard error
        # instead of silent state corruption.  ``None`` (the default, and
        # the only value outside a serving context) costs one attribute
        # check per query.
        self._mutation_guard = None

    def set_mutation_guard(self, guard) -> None:
        """Install ``guard()`` to be called before every lifecycle mutation.

        Pass ``None`` to uninstall.  The guard must raise to veto the
        mutation; its return value is ignored.
        """
        self._mutation_guard = guard

    # ------------------------------------------------------------------
    @property
    def phase(self) -> IndexPhase:
        """The current life-cycle phase."""
        return self._phase

    @property
    def converged(self) -> bool:
        """Whether the lifecycle reached its terminal phase."""
        return self._phase is IndexPhase.CONVERGED

    def advance(self, phase: IndexPhase, query_number: int = 0) -> None:
        """Move to ``phase``, enforcing the monotone phase order.

        Parameters
        ----------
        phase:
            The phase to enter; must be strictly later than the current one.
        query_number:
            The 1-based query during which the transition happened (``0``
            for transitions outside query execution).
        """
        if not isinstance(phase, IndexPhase):
            raise IndexStateError(
                f"advance() expects an IndexPhase, got {type(phase).__name__}"
            )
        if self._mutation_guard is not None:
            self._mutation_guard()
        merge_completed = (
            self._phase is IndexPhase.MERGE and phase is IndexPhase.CONVERGED
        )
        if phase.order <= self._phase.order and not merge_completed:
            raise IndexStateError(
                f"illegal phase transition {self._phase.value!r} -> {phase.value!r}; "
                "progressive indexes only move forward through the life cycle "
                "(the one backward edge is merge -> converged)"
            )
        self._phase = phase
        self.transitions.append((int(query_number), phase))

    # ------------------------------------------------------------------
    def note_query(self, phase: IndexPhase, indexing_seconds: float = 0.0) -> None:
        """Account one executed query to ``phase``.

        ``indexing_seconds`` is the (predicted) indexing budget the query
        spent, i.e. the ``delta * t_work`` term of its cost breakdown.
        """
        if self._mutation_guard is not None:
            self._mutation_guard()
        self._queries[phase] += 1
        if indexing_seconds > 0.0:
            self._indexing_seconds[phase] += float(indexing_seconds)

    def queries_in(self, phase: IndexPhase) -> int:
        """Number of queries answered while in ``phase``."""
        return self._queries[phase]

    def indexing_seconds_in(self, phase: IndexPhase) -> float:
        """Indexing budget (seconds) spent while in ``phase``."""
        return self._indexing_seconds[phase]

    def snapshot(self) -> Dict[str, dict]:
        """Per-phase usage summary for session stats / reports.

        Only phases that were actually visited (answered at least one query
        or appear in the transition history) are included.
        """
        visited = {phase for phase, count in self._queries.items() if count}
        visited.update(phase for _, phase in self.transitions)
        visited.add(self._phase)
        report = {}
        for phase in sorted(visited, key=lambda p: p.order):
            report[phase.value] = {
                "queries": self._queries[phase],
                "indexing_seconds": self._indexing_seconds[phase],
            }
        return report

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the phase machine."""
        return {
            "phase": self._phase.value,
            "transitions": [[int(q), phase.value] for q, phase in self.transitions],
            "queries": {phase.value: int(n) for phase, n in self._queries.items() if n},
            "indexing_seconds": {
                phase.value: float(s)
                for phase, s in self._indexing_seconds.items()
                if s
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a checkpointed phase machine.

        Sets the phase directly — the monotonicity rule of :meth:`advance`
        guards *transitions*, not restores: a recovered index legitimately
        wakes up mid-``REFINEMENT`` or mid-``MERGE``.
        """
        self._phase = IndexPhase(state["phase"])
        self.transitions = [
            (int(q), IndexPhase(value)) for q, value in state.get("transitions", [])
        ]
        self._queries = {phase: 0 for phase in IndexPhase}
        for value, count in state.get("queries", {}).items():
            self._queries[IndexPhase(value)] = int(count)
        self._indexing_seconds = {phase: 0.0 for phase in IndexPhase}
        for value, seconds in state.get("indexing_seconds", {}).items():
            self._indexing_seconds[IndexPhase(value)] = float(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IndexLifecycle(phase={self._phase.value!r}, transitions={len(self.transitions)})"
