"""The canonical phases of a progressive index.

Section 3 of the paper defines three phases every progressive indexing
algorithm moves through:

``CREATION``
    The index is progressively populated from the base column; queries scan
    the not-yet-indexed tail of the column plus the partial index.
``REFINEMENT``
    All data lives in the index; queries only touch the index while it is
    progressively reorganised towards a fully sorted array.
``CONSOLIDATION``
    The sorted array is progressively turned into a B+-tree.
``CONVERGED``
    The B+-tree is complete; no further indexing work is performed.

``INACTIVE`` is the state before the first query touches the column (no
memory has been allocated yet), matching the paper's premise that an index is
only initiated when its column is first queried.
"""

from __future__ import annotations

import enum


class IndexPhase(enum.Enum):
    """Life-cycle phase of a progressive index."""

    INACTIVE = "inactive"
    CREATION = "creation"
    REFINEMENT = "refinement"
    CONSOLIDATION = "consolidation"
    CONVERGED = "converged"

    @property
    def does_indexing_work(self) -> bool:
        """Whether queries in this phase still spend budget on indexing."""
        return self in (
            IndexPhase.CREATION,
            IndexPhase.REFINEMENT,
            IndexPhase.CONSOLIDATION,
        )

    @property
    def order(self) -> int:
        """Monotone integer ordering of the phases (INACTIVE=0 .. CONVERGED=4)."""
        return _PHASE_ORDER[self]

    def __lt__(self, other: "IndexPhase") -> bool:
        if not isinstance(other, IndexPhase):
            return NotImplemented
        return self.order < other.order

    def __le__(self, other: "IndexPhase") -> bool:
        if not isinstance(other, IndexPhase):
            return NotImplemented
        return self.order <= other.order


_PHASE_ORDER = {
    IndexPhase.INACTIVE: 0,
    IndexPhase.CREATION: 1,
    IndexPhase.REFINEMENT: 2,
    IndexPhase.CONSOLIDATION: 3,
    IndexPhase.CONVERGED: 4,
}
