"""Budget policies and the controller routing every delta decision.

Section 3 of the paper derives per-algorithm cost models so that the
indexing fraction ``delta`` can be *chosen* instead of guessed: given an
interactivity threshold τ, every query should perform exactly as much
indexing work as keeps its total predicted cost at τ.  This module turns
that idea into the single execution-layer abstraction all engine paths
share:

:class:`BudgetPolicy`
    Strategy object answering "how much of the remaining phase work should
    this query perform?".  Three first-class flavours implement the paper's
    spectrum:

    * :class:`FixedDelta` — the fixed-``delta`` baseline (Figure 7 sweeps);
    * :class:`TimeAdaptive` — the time-based adaptive budget (Section 3,
      "adaptive indexing budget"), optionally correcting itself from
      *measured* query times through an injectable clock;
    * :class:`CostModelGreedy` — the cost-model-driven greedy adaptation:
      it asks the index for a full :class:`~repro.core.cost_model.CostBreakdown`
      prediction as a function of ``delta`` and solves for the ``delta``
      that lands the query on the caller's ``interactivity_budget`` τ,
      backing off multiplicatively when measured times show the
      predictions missed.

:class:`BatchPool`
    The pooled policy used by the batch executor: ``n`` queries' worth of
    budget drained greedily so batches front-load convergence.

:class:`BudgetController`
    The one controller every budget decision routes through — single
    queries, multi-column ``where()`` driving queries, batch execution,
    and the mutable substrate's delta-merge decisions alike.  It builds
    the per-query :class:`DeltaRequest` (base cost, remaining-work cost,
    and a ``predict(delta)`` callable backed by the index's cost model),
    clamps the policy's answer to the phase's feasible range, and feeds
    measured wall-clock durations back into the policy.

Merge work is priced through the same machinery: during the ``MERGE``
life-cycle stage the ``predict(delta)`` callable reports the pending
delta-fold cost in the ``merge`` component of the
:class:`~repro.core.cost_model.CostBreakdown`, so
:class:`CostModelGreedy` trades scanning vs. indexing vs. merging under
one interactivity budget τ, fixed/adaptive budgets pace merging exactly
as they pace construction, and a :class:`BatchPool` front-loads pending
merges into the first queries of a batch.

All model-space costs are in seconds.  Policies never read the wall clock
directly: time only enters through the injectable ``clock`` callable, so
the adaptive paths are deterministic under test.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.cost_model import CostBreakdown
from repro.errors import InvalidBudgetError

#: Smallest delta an adaptive policy will return while work remains.  A
#: strictly positive floor guarantees deterministic convergence even when a
#: single query is predicted to have no slack at all.
MINIMUM_DELTA = 1e-4

#: Type of the injectable clock: a zero-argument callable returning seconds.
Clock = Callable[[], float]


def _updated_correction(
    current: float,
    elapsed_seconds: float,
    predicted_seconds: float,
    smoothing: float,
    bounds: tuple,
) -> float:
    """One step of the shared measured/predicted feedback loop.

    Clamps the observed ratio to ``bounds``, folds it into the running
    correction with exponential smoothing, and clamps the result — the one
    place both self-correcting policies get their update from.
    """
    low, high = bounds
    ratio = min(high, max(low, elapsed_seconds / predicted_seconds))
    updated = current + smoothing * (ratio - current)
    return min(high, max(low, updated))


@dataclass
class DeltaRequest:
    """Everything a policy may consult when choosing ``delta`` for one query.

    Attributes
    ----------
    full_work_time:
        Predicted cost (seconds) of performing *all* remaining work of the
        current phase at once (``delta = 1``).
    base_cost:
        Predicted cost of answering the query without any indexing work
        (``delta = 0``), split into scan / lookup components.
    predict:
        Optional callable mapping a candidate ``delta`` to the full
        predicted :class:`CostBreakdown` of the query.  Progressive indexes
        provide their per-phase cost formulas here; policies that solve for
        ``delta`` exactly (:class:`CostModelGreedy`) use it, slack-based
        policies ignore it.
    max_delta:
        Upper bound on the feasible ``delta`` this query (e.g. the fraction
        of the column not yet copied during creation).
    n_elements:
        Column size, for policies that want to scale floors.
    phase:
        Life-cycle phase the decision is for; self-correcting policies keep
        per-phase measured/predicted statistics keyed on it.
    """

    full_work_time: float
    base_cost: CostBreakdown = field(default_factory=lambda: CostBreakdown(0.0, 0.0, 0.0))
    predict: Optional[Callable[[float], CostBreakdown]] = None
    max_delta: float = 1.0
    n_elements: int = 0
    phase: object = None

    @property
    def base_total(self) -> float:
        """Total predicted no-indexing cost in seconds."""
        return self.base_cost.total


@dataclass
class DeltaDecision:
    """The controller's answer for one query.

    Attributes
    ----------
    delta:
        The clamped fraction of the remaining phase work to perform.
    predicted:
        The cost-model prediction at the chosen ``delta`` (``None`` when the
        request carried no ``predict`` callable).
    """

    delta: float
    predicted: Optional[CostBreakdown] = None

    @property
    def predicted_seconds(self) -> Optional[float]:
        """Total predicted query time, if a prediction was available."""
        return None if self.predicted is None else self.predicted.total


class BudgetPolicy(abc.ABC):
    """Strategy object deciding how much indexing work each query performs.

    The legacy entry point is :meth:`next_delta`; richer policies override
    :meth:`choose` to consult the full :class:`DeltaRequest`.  Policies with
    a wall-clock feedback loop additionally implement :meth:`observe`.
    """

    #: Whether the policy recomputes delta for every query.
    adaptive: bool = False

    #: Whether the policy pools many queries' worth of work (batch
    #: execution).  Indexes may take whole-phase fast paths under a pooled
    #: policy; under per-query policies they must keep the paper's bounded
    #: per-query work semantics.
    pooled: bool = False

    #: Injectable clock; ``None`` disables wall-clock feedback entirely.
    clock: Optional[Clock] = None

    def register_scan_time(self, scan_time: float) -> None:
        """Inform the policy of the predicted full-scan time.

        Policies defined as a fraction of the scan cost resolve themselves
        to seconds on this call; other policies ignore it.
        """

    @abc.abstractmethod
    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        """Return the fraction of the remaining phase work to perform now.

        Parameters
        ----------
        full_work_time:
            Predicted cost (seconds) of performing all remaining work of
            the current phase at once.
        query_base_cost:
            Predicted cost (seconds) of answering the current query without
            any indexing work.
        """

    def choose(self, request: DeltaRequest) -> float:
        """Choose ``delta`` for ``request``; defaults to :meth:`next_delta`."""
        return self.next_delta(request.full_work_time, request.base_total)

    def observe(self, elapsed_seconds: float, predicted_seconds: float | None = None) -> None:
        """Feed back the measured duration of the query just executed.

        Only called when the policy carries a clock; the default is a no-op.
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


class FixedDelta(BudgetPolicy):
    """Index a fixed fraction ``delta`` of the remaining work every query.

    Parameters
    ----------
    delta:
        Fraction of the (remaining phase) work performed per query.  ``0``
        disables indexing entirely — the index never converges, matching
        the paper's ``delta = 0`` discussion.
    """

    adaptive = False

    def __init__(self, delta: float) -> None:
        if not 0.0 <= delta <= 1.0:
            raise InvalidBudgetError(f"delta must be within [0, 1], got {delta}")
        self.delta = float(delta)

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        return self.delta

    def describe(self) -> str:
        return f"FixedDelta(delta={self.delta})"


class FixedTime(BudgetPolicy):
    """Fixed budget expressed as seconds of indexing time for the first query.

    The delta implied by the first query (``t_budget / t_full_work``) is
    computed once and reused for all subsequent queries, as described in
    the paper's "fixed indexing budget" flavour.
    """

    adaptive = False

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        self.budget_seconds = float(budget_seconds)
        self._delta: float | None = None

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self._delta is None:
            if full_work_time <= 0:
                self._delta = 1.0
            else:
                self._delta = min(1.0, self.budget_seconds / full_work_time)
        return self._delta

    def describe(self) -> str:
        return f"FixedTime(budget={self.budget_seconds:.6f}s)"


class TimeAdaptive(BudgetPolicy):
    """Time-based adaptive policy keeping total query cost ~constant.

    The user provides the indexing budget of the first query; that fixes
    the target query time ``t_target = t_scan + t_budget``.  Every
    subsequent query spends whatever slack ``t_target - t_base`` remains
    on indexing: ``delta = slack / t_full_work``.

    Parameters
    ----------
    budget_seconds:
        Indexing budget of the first query, in seconds.  Mutually exclusive
        with ``scan_fraction``.
    scan_fraction:
        Indexing budget of the first query expressed as a fraction of the
        full-scan cost (the paper's experiments use ``0.2``, i.e. every
        query costs about ``1.2 x t_scan`` until convergence).  Resolved to
        seconds when :meth:`register_scan_time` is called.
    minimum_delta:
        Floor on the returned delta while work remains, guaranteeing
        convergence even when the cost model predicts no slack.
    clock:
        Optional clock enabling the wall-clock feedback loop: measured
        query durations are compared against the cost-model predictions and
        the slack is divided by the (clamped, exponentially smoothed)
        measured/predicted ratio, so a machine running slower than the
        model thinks indexes less per query.  ``None`` (the default) keeps
        the policy purely model-driven; tests inject a fake clock to drive
        the adaptive path deterministically.
    """

    adaptive = True

    #: Clamp of the measured/predicted correction ratio.
    CORRECTION_RANGE = (0.25, 4.0)

    #: Exponential-smoothing weight of a new measured/predicted ratio.
    SMOOTHING = 0.3

    def __init__(
        self,
        budget_seconds: float | None = None,
        scan_fraction: float | None = None,
        minimum_delta: float = MINIMUM_DELTA,
        clock: Optional[Clock] = None,
    ) -> None:
        if (budget_seconds is None) == (scan_fraction is None):
            raise InvalidBudgetError(
                "provide exactly one of budget_seconds or scan_fraction"
            )
        if budget_seconds is not None and budget_seconds <= 0:
            raise InvalidBudgetError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        if scan_fraction is not None and scan_fraction <= 0:
            raise InvalidBudgetError(
                f"scan_fraction must be positive, got {scan_fraction}"
            )
        if minimum_delta < 0:
            raise InvalidBudgetError(
                f"minimum_delta must be non-negative, got {minimum_delta}"
            )
        self.budget_seconds = budget_seconds
        self.scan_fraction = scan_fraction
        self.minimum_delta = float(minimum_delta)
        self.target_query_cost: float | None = None
        self.clock = clock
        self.correction = 1.0

    def register_scan_time(self, scan_time: float) -> None:
        if self.budget_seconds is None:
            self.budget_seconds = self.scan_fraction * scan_time
        if self.target_query_cost is None:
            self.target_query_cost = scan_time + self.budget_seconds

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self.budget_seconds is None:
            raise InvalidBudgetError(
                "TimeAdaptive with scan_fraction requires register_scan_time() "
                "before the first next_delta() call"
            )
        if full_work_time <= 0:
            return 1.0
        if self.target_query_cost is None:
            # First query: the budget itself is the indexing slack.
            slack = self.budget_seconds
        else:
            slack = self.target_query_cost - query_base_cost
        slack /= self.correction
        delta = slack / full_work_time
        return float(min(1.0, max(self.minimum_delta, delta)))

    def observe(self, elapsed_seconds: float, predicted_seconds: float | None = None) -> None:
        if self.clock is None or predicted_seconds is None or predicted_seconds <= 0:
            return
        self.correction = _updated_correction(
            self.correction, elapsed_seconds, predicted_seconds,
            self.SMOOTHING, self.CORRECTION_RANGE,
        )

    def describe(self) -> str:
        if self.scan_fraction is not None:
            return f"TimeAdaptive(scan_fraction={self.scan_fraction})"
        return f"TimeAdaptive(budget={self.budget_seconds:.6f}s)"


class CostModelGreedy(BudgetPolicy):
    """Cost-model-driven greedy adaptation towards an interactivity budget.

    The caller states the interactivity threshold τ — the total time one
    query is allowed to take.  For every query the policy asks the index's
    cost model for the predicted :class:`CostBreakdown` as a function of
    ``delta`` and solves ``predicted_total(delta) = τ`` exactly (all the
    paper's per-phase formulas are linear in ``delta``, so the solve is a
    closed form between ``predict(0)`` and ``predict(1)``).  Queries with
    no slack fall back to ``minimum_delta`` so convergence stays
    deterministic.

    When a ``clock`` is provided, the policy additionally implements the
    paper's backoff for cost-model misses as a continuous feedback loop:
    after every query it observes the measured / predicted time ratio and
    keeps a clamped, exponentially smoothed *correction* per life-cycle
    phase.  The solve then targets ``τ / correction`` — a phase whose
    predictions miss low (queries overshoot τ) gets its indexing backed
    off until the measured time lands back on τ.  With the default
    ``correction_range`` the loop only ever backs off (corrections stay
    ≥ 1); passing a lower bound below ``1`` additionally returns unused
    slack when predictions miss high, trading per-query stability for
    faster convergence.  Without a clock the corrections stay at ``1``
    and the policy is purely model-driven and deterministic.

    Parameters
    ----------
    interactivity_budget:
        τ in seconds: the target total per-query time.  Mutually exclusive
        with ``scan_fraction``.
    scan_fraction:
        Express τ relative to the scan cost: ``τ = (1 + scan_fraction) *
        t_scan``, the same shape as the paper's adaptive experiments
        (``0.2`` → every query costs about ``1.2 x t_scan``).  Resolved on
        :meth:`register_scan_time`.
    minimum_delta:
        Convergence floor while work remains.
    smoothing:
        Exponential-smoothing weight of a new measured/predicted ratio.
    correction_range:
        Clamp of the per-phase correction; bounds how far a single
        mis-calibrated phase can drag the target.  The default
        ``(1.0, 4.0)`` is backoff-only.
    clock:
        Injectable clock enabling the feedback loop; ``None`` keeps the
        policy deterministic.
    """

    adaptive = True

    def __init__(
        self,
        interactivity_budget: float | None = None,
        scan_fraction: float | None = None,
        minimum_delta: float = MINIMUM_DELTA,
        smoothing: float = 0.4,
        correction_range: tuple = (1.0, 4.0),
        clock: Optional[Clock] = None,
    ) -> None:
        if (interactivity_budget is None) == (scan_fraction is None):
            raise InvalidBudgetError(
                "provide exactly one of interactivity_budget or scan_fraction"
            )
        if interactivity_budget is not None and interactivity_budget <= 0:
            raise InvalidBudgetError(
                f"interactivity_budget must be positive, got {interactivity_budget}"
            )
        if scan_fraction is not None and scan_fraction <= 0:
            raise InvalidBudgetError(
                f"scan_fraction must be positive, got {scan_fraction}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise InvalidBudgetError(f"smoothing must be in (0, 1], got {smoothing}")
        if minimum_delta < 0:
            raise InvalidBudgetError(
                f"minimum_delta must be non-negative, got {minimum_delta}"
            )
        low, high = correction_range
        if not 0 < low <= 1.0 <= high:
            raise InvalidBudgetError(
                f"correction_range must bracket 1.0, got {correction_range}"
            )
        self.interactivity_budget = interactivity_budget
        self.scan_fraction = scan_fraction
        self.minimum_delta = float(minimum_delta)
        self.smoothing = float(smoothing)
        self.correction_range = (float(low), float(high))
        self.clock = clock
        self._corrections: dict = {}
        self._observe_phase = None

    # ------------------------------------------------------------------
    @property
    def tau(self) -> float | None:
        """The interactivity threshold τ in seconds (``None`` if unresolved)."""
        return self.interactivity_budget

    def register_scan_time(self, scan_time: float) -> None:
        if self.interactivity_budget is None:
            self.interactivity_budget = (1.0 + self.scan_fraction) * scan_time

    def correction_for(self, phase) -> float:
        """The measured/predicted correction currently applied for ``phase``."""
        return self._corrections.get(phase, 1.0)

    # ------------------------------------------------------------------
    def choose(self, request: DeltaRequest) -> float:
        tau = self._require_tau() / self.correction_for(request.phase)
        self._observe_phase = request.phase
        if request.full_work_time <= 0:
            return 1.0
        base = request.base_total
        if request.predict is not None:
            # The caller already evaluated predict(0) into base_cost; only
            # the delta = 1 endpoint needs a fresh evaluation.
            work_slope = request.predict(1.0).total - base
        else:
            work_slope = request.full_work_time
        if work_slope <= 0:
            return 1.0
        delta = (tau - base) / work_slope
        return float(min(1.0, max(self.minimum_delta, delta)))

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        return self.choose(
            DeltaRequest(
                full_work_time=full_work_time,
                base_cost=CostBreakdown(scan=query_base_cost, lookup=0.0, indexing=0.0),
            )
        )

    def _require_tau(self) -> float:
        if self.interactivity_budget is None:
            raise InvalidBudgetError(
                "CostModelGreedy with scan_fraction requires register_scan_time() "
                "before the first delta decision"
            )
        return self.interactivity_budget

    # ------------------------------------------------------------------
    def observe(self, elapsed_seconds: float, predicted_seconds: float | None = None) -> None:
        if self.clock is None or predicted_seconds is None or predicted_seconds <= 0:
            return
        phase = self._observe_phase
        self._corrections[phase] = _updated_correction(
            self._corrections.get(phase, 1.0), elapsed_seconds, predicted_seconds,
            self.smoothing, self.correction_range,
        )

    def describe(self) -> str:
        if self.scan_fraction is not None and self.interactivity_budget is None:
            return f"CostModelGreedy(scan_fraction={self.scan_fraction})"
        return f"CostModelGreedy(tau={self.interactivity_budget:.6f}s)"


class BatchPool(BudgetPolicy):
    """Shared indexing-budget pool for a batch of queries.

    The batch executor answers a whole workload at once, so instead of
    granting every query its individual slice of indexing time, the
    per-query budget of ``n_queries`` queries is pooled into one reservoir
    that is drained greedily: the first queries of the batch may perform far
    more than their per-query share of indexing work (front-loading
    convergence so the rest of the batch can be answered with vectorized
    lookups), but the batch as a whole never spends more indexing time than
    the equivalent sequential execution would have.

    Parameters
    ----------
    n_queries:
        Number of queries whose budgets are pooled.
    per_query_seconds:
        Indexing budget of one query, in seconds.  Mutually exclusive with
        ``scan_fraction`` and ``interactivity_budget``.
    scan_fraction:
        Per-query budget as a fraction of the full-scan cost (the paper's
        default is ``0.2``); resolved to seconds by
        :meth:`register_scan_time`.
    interactivity_budget:
        Per-query total-time target τ; the pooled per-query budget becomes
        the slack ``max(0, τ - t_scan)``, resolved by
        :meth:`register_scan_time`.  Used when pooling the budget of an
        index driven by :class:`CostModelGreedy`.
    """

    adaptive = True
    pooled = True

    def __init__(
        self,
        n_queries: int,
        per_query_seconds: float | None = None,
        scan_fraction: float | None = None,
        interactivity_budget: float | None = None,
    ) -> None:
        if n_queries < 0:
            raise InvalidBudgetError(f"n_queries must be non-negative, got {n_queries}")
        provided = [
            value
            for value in (per_query_seconds, scan_fraction, interactivity_budget)
            if value is not None
        ]
        if len(provided) > 1:
            raise InvalidBudgetError(
                "provide at most one of per_query_seconds, scan_fraction or "
                "interactivity_budget"
            )
        if per_query_seconds is not None and per_query_seconds < 0:
            raise InvalidBudgetError(
                f"per_query_seconds must be non-negative, got {per_query_seconds}"
            )
        if scan_fraction is not None and scan_fraction < 0:
            raise InvalidBudgetError(
                f"scan_fraction must be non-negative, got {scan_fraction}"
            )
        if interactivity_budget is not None and interactivity_budget < 0:
            raise InvalidBudgetError(
                f"interactivity_budget must be non-negative, got {interactivity_budget}"
            )
        if not provided:
            scan_fraction = 0.2
        self.n_queries = int(n_queries)
        self.scan_fraction = scan_fraction
        self.interactivity_budget = interactivity_budget
        self.pool_seconds: float | None = (
            None if per_query_seconds is None else per_query_seconds * self.n_queries
        )
        self.spent_seconds = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def for_index(cls, index, n_queries: int) -> "BatchPool":
        """A pool equivalent to ``n_queries`` queries of ``index``'s policy.

        The mapping preserves the spirit of each per-query budget flavour:
        time-based budgets pool their per-query seconds, fraction/delta-based
        budgets pool the corresponding fraction of the scan cost, and
        interactivity budgets pool their per-query slack over the scan.
        """
        policy = index.budget
        if isinstance(policy, cls):
            per_query = None
            if policy.pool_seconds is not None and policy.n_queries > 0:
                per_query = policy.pool_seconds / policy.n_queries
            if per_query is not None:
                return cls(n_queries, per_query_seconds=per_query)
            if policy.interactivity_budget is not None:
                return cls(n_queries, interactivity_budget=policy.interactivity_budget)
            return cls(n_queries, scan_fraction=policy.scan_fraction)
        if isinstance(policy, CostModelGreedy):
            if policy.interactivity_budget is not None:
                return cls(n_queries, interactivity_budget=policy.interactivity_budget)
            return cls(n_queries, scan_fraction=policy.scan_fraction)
        if isinstance(policy, TimeAdaptive):
            if policy.budget_seconds is not None:
                return cls(n_queries, per_query_seconds=policy.budget_seconds)
            return cls(n_queries, scan_fraction=policy.scan_fraction)
        if isinstance(policy, FixedTime):
            return cls(n_queries, per_query_seconds=policy.budget_seconds)
        if isinstance(policy, FixedDelta):
            # A fixed delta indexes `delta` of the phase work per query; one
            # unit of phase work costs on the order of one scan, so the
            # pooled equivalent is `delta` of the scan cost per query.
            return cls(n_queries, scan_fraction=policy.delta)
        return cls(n_queries)

    # ------------------------------------------------------------------
    @property
    def remaining_seconds(self) -> float:
        """Indexing seconds left in the pool (``0`` when exhausted)."""
        if self.pool_seconds is None:
            return 0.0
        return max(0.0, self.pool_seconds - self.spent_seconds)

    @property
    def exhausted(self) -> bool:
        """Whether the pool has been drained (or never held any budget)."""
        return self.pool_seconds is not None and self.remaining_seconds <= 0.0

    def register_scan_time(self, scan_time: float) -> None:
        if self.pool_seconds is not None:
            return
        if self.interactivity_budget is not None:
            per_query = max(0.0, self.interactivity_budget - scan_time)
        else:
            per_query = self.scan_fraction * scan_time
        self.pool_seconds = per_query * self.n_queries

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        if self.pool_seconds is None:
            raise InvalidBudgetError(
                "BatchPool with scan_fraction requires register_scan_time() "
                "before the first next_delta() call"
            )
        if full_work_time <= 0:
            return 1.0
        remaining = self.remaining_seconds
        if remaining <= 0.0:
            return 0.0
        delta = min(1.0, remaining / full_work_time)
        self.spent_seconds += delta * full_work_time
        return delta

    def describe(self) -> str:
        if self.pool_seconds is not None:
            return (
                f"BatchPool(n_queries={self.n_queries}, "
                f"pool={self.pool_seconds:.6f}s)"
            )
        if self.interactivity_budget is not None:
            return (
                f"BatchPool(n_queries={self.n_queries}, "
                f"tau={self.interactivity_budget:.6f}s)"
            )
        return (
            f"BatchPool(n_queries={self.n_queries}, "
            f"scan_fraction={self.scan_fraction})"
        )


class CappedBudget(BudgetPolicy):
    """Admission wrapper clamping the inner policy's per-query grant.

    The serving layer's :class:`~repro.serve.scheduler.ProgressiveScheduler`
    turns a connection class's interactivity budget (tau) into an
    *allowance* of indexing seconds for each admitted query.  This wrapper
    is swapped in front of the index's own policy for the duration of that
    query: the inner policy still chooses its preferred ``delta`` (so
    adaptive policies keep learning from an undistorted stream), but the
    grant is clamped so the predicted indexing work ``delta *
    full_work_time`` never exceeds the allowance.  The seconds actually
    granted accumulate in :attr:`granted_seconds`, which the scheduler
    charges to the connection class's work account — budgets become a
    fairness currency shared across clients rather than a per-session knob.

    Parameters
    ----------
    inner:
        The index's own policy; every decision and observation is
        forwarded to it.
    allowance_seconds:
        Maximum predicted indexing seconds one query may spend.  Use
        ``float("inf")`` for no cap (pass-through).
    """

    def __init__(self, inner: BudgetPolicy, allowance_seconds: float) -> None:
        if not isinstance(inner, BudgetPolicy):
            raise InvalidBudgetError(
                f"CappedBudget expects a BudgetPolicy, got {type(inner).__name__}"
            )
        if allowance_seconds < 0:
            raise InvalidBudgetError(
                f"allowance_seconds must be >= 0, got {allowance_seconds}"
            )
        self.inner = inner
        self.allowance_seconds = float(allowance_seconds)
        #: Predicted indexing seconds granted through this wrapper so far.
        self.granted_seconds = 0.0

    # Delegate the capability flags so engine fast paths (pooled
    # whole-phase shortcuts, wall-clock feedback) behave exactly as they
    # would under the inner policy.
    @property
    def adaptive(self) -> bool:  # type: ignore[override]
        return self.inner.adaptive

    @property
    def pooled(self) -> bool:  # type: ignore[override]
        return self.inner.pooled

    @property
    def clock(self):  # type: ignore[override]
        return self.inner.clock

    def register_scan_time(self, scan_time: float) -> None:
        self.inner.register_scan_time(scan_time)

    def _cap(self, delta: float, full_work_time: float) -> float:
        if full_work_time > 0.0 and self.allowance_seconds < float("inf"):
            delta = min(delta, self.allowance_seconds / full_work_time)
        delta = max(0.0, min(1.0, float(delta)))
        self.granted_seconds += delta * max(full_work_time, 0.0)
        return delta

    def next_delta(self, full_work_time: float, query_base_cost: float = 0.0) -> float:
        return self._cap(
            self.inner.next_delta(full_work_time, query_base_cost), full_work_time
        )

    def choose(self, request: DeltaRequest) -> float:
        return self._cap(self.inner.choose(request), request.full_work_time)

    def observe(self, elapsed_seconds: float, predicted_seconds: float | None = None) -> None:
        self.inner.observe(elapsed_seconds, predicted_seconds)

    def describe(self) -> str:
        if self.allowance_seconds == float("inf"):
            return f"CappedBudget(uncapped, {self.inner.describe()})"
        return (
            f"CappedBudget(allowance={self.allowance_seconds:.2e}s, "
            f"{self.inner.describe()})"
        )

    def __getattr__(self, name: str):
        # Forward policy-specific attributes (``tau``, ``correction_for``,
        # ``budget_seconds`` ...) so index code that introspects its policy
        # keeps working while the wrapper is installed.
        if name == "inner":  # guard half-constructed instances
            raise AttributeError(name)
        return getattr(self.inner, name)


class PooledBudgetController:
    """Splits one interactivity budget τ across the shards a query touches.

    Sharded execution answers one logical query with up to K per-shard
    queries.  Handing every shard the full τ would multiply the end-to-end
    latency by the number of touched shards; this controller instead
    derives a per-shard total-time target so the *logical* query still
    lands on τ:

    ``lanes = min(parallelism, touched)`` shards run concurrently, each
    execution lane serves ``touched / lanes`` shards back to back, so the
    per-shard target is ``τ_s = τ * lanes / touched``.  Serial execution
    (``parallelism = 1``) degrades to the natural ``τ / touched`` split;
    with enough workers every touched shard gets the full τ.  Because the
    divisor is the number of *touched* shards, everything the zone-map
    router prunes automatically donates its slice to the survivors.

    Per shard the target is enforced by wrapping the shard index's own
    policy in a :class:`CappedBudget` whose allowance is the slack
    ``max(0, τ_s - predicted_base_cost)`` — the shard policy keeps
    choosing (and learning) freely, it just cannot overdraw the pool.

    Parameters
    ----------
    interactivity_budget:
        τ in seconds for the logical query; ``None`` disables pooling
        (shards run under their own policies uncapped).
    n_shards:
        Total shard count K (for reporting).
    parallelism:
        Number of concurrent execution lanes (worker processes; 1 for
        the serial executor).
    """

    def __init__(
        self,
        interactivity_budget: float | None = None,
        n_shards: int = 1,
        parallelism: int = 1,
    ) -> None:
        if interactivity_budget is not None and interactivity_budget <= 0:
            raise InvalidBudgetError(
                f"interactivity_budget must be positive, got {interactivity_budget}"
            )
        if n_shards < 1:
            raise InvalidBudgetError(f"n_shards must be >= 1, got {n_shards}")
        if parallelism < 1:
            raise InvalidBudgetError(f"parallelism must be >= 1, got {parallelism}")
        self.interactivity_budget = interactivity_budget
        self.n_shards = int(n_shards)
        self.parallelism = int(parallelism)
        #: Logical queries routed through the pool.
        self.queries = 0
        #: Per-shard dispatches charged against the pool.
        self.shards_charged = 0
        #: Predicted indexing seconds granted through the per-shard caps.
        self.granted_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def tau(self) -> float | None:
        """The logical query's interactivity threshold τ (``None`` = off)."""
        return self.interactivity_budget

    def lanes(self, touched: int) -> int:
        """Concurrent execution lanes available for ``touched`` shards."""
        return max(1, min(self.parallelism, max(1, int(touched))))

    def shard_budget(self, touched: int) -> float | None:
        """Per-shard total-time target τ_s for a query touching ``touched``.

        Pruned shards do not appear in ``touched``, so their budget flows
        to the survivors.
        """
        if self.interactivity_budget is None:
            return None
        touched = max(1, int(touched))
        return self.interactivity_budget * self.lanes(touched) / touched

    def shard_allowance(self, touched: int, base_seconds: float | None) -> float:
        """Indexing-seconds cap for one shard of a ``touched``-shard query.

        ``base_seconds`` is the shard's predicted no-indexing cost
        (``predict(0)``); shards without a cost model get the full τ_s.
        """
        budget = self.shard_budget(touched)
        if budget is None:
            return float("inf")
        if base_seconds is None:
            return budget
        return max(0.0, budget - float(base_seconds))

    def charge(self, touched: int, granted_seconds: float) -> None:
        """Account one logical query's per-shard grants."""
        self.queries += 1
        self.shards_charged += max(0, int(touched))
        self.granted_seconds += max(0.0, float(granted_seconds))

    def snapshot(self) -> dict:
        return {
            "tau": self.interactivity_budget,
            "n_shards": self.n_shards,
            "parallelism": self.parallelism,
            "queries": int(self.queries),
            "shards_charged": int(self.shards_charged),
            "granted_seconds": float(self.granted_seconds),
        }

    def describe(self) -> str:
        if self.interactivity_budget is None:
            return (
                f"PooledBudget(uncapped, shards={self.n_shards}, "
                f"parallelism={self.parallelism})"
            )
        return (
            f"PooledBudget(tau={self.interactivity_budget:.6f}s, "
            f"shards={self.n_shards}, parallelism={self.parallelism})"
        )


class BudgetController:
    """The single decision point every budget question routes through.

    One controller is attached to every index.  The engine paths — a
    sequential :meth:`~repro.core.index.BaseIndex.query`, the driving query
    of a multi-column ``where()``, and the batch executor's pooled
    execution — all end up in :meth:`decide`, which consults the installed
    :class:`BudgetPolicy` with the full :class:`DeltaRequest` (including
    the index's ``predict(delta)`` cost-model callable) and clamps the
    answer to the feasible range.  Measured query durations flow back
    through :meth:`observe` so self-correcting policies see reality.

    Parameters
    ----------
    policy:
        The initially installed budget policy.
    """

    def __init__(self, policy: BudgetPolicy) -> None:
        if not isinstance(policy, BudgetPolicy):
            raise InvalidBudgetError(
                f"BudgetController expects a BudgetPolicy, got {type(policy).__name__}"
            )
        self._policy = policy
        self._scan_time: float | None = None

    # ------------------------------------------------------------------
    @property
    def policy(self) -> BudgetPolicy:
        """The currently installed budget policy."""
        return self._policy

    def swap_policy(self, policy: BudgetPolicy) -> BudgetPolicy:
        """Install ``policy`` and return the previously installed one.

        The batch executor uses this to temporarily replace a per-query
        policy with a pooled :class:`BatchPool` for the duration of one
        batch, restoring the original afterwards.  A policy installed
        mid-run is resolved against the already-registered scan time.
        """
        if not isinstance(policy, BudgetPolicy):
            raise InvalidBudgetError(
                f"swap_policy() expects a BudgetPolicy, got {type(policy).__name__}"
            )
        previous = self._policy
        self._policy = policy
        if self._scan_time is not None:
            policy.register_scan_time(self._scan_time)
        return previous

    def register_scan_time(self, scan_time: float) -> None:
        """Resolve fraction-based policies against the predicted scan time."""
        self._scan_time = float(scan_time)
        self._policy.register_scan_time(self._scan_time)

    # ------------------------------------------------------------------
    def decide(self, request: DeltaRequest) -> DeltaDecision:
        """Choose the indexing fraction for one query.

        The policy's raw answer is clamped to ``[0, request.max_delta]``
        *after* the policy call, preserving pooled-reservoir accounting
        (a pool spends what it granted, not what the phase could absorb).
        """
        delta = float(self._policy.choose(request))
        delta = min(delta, float(request.max_delta))
        delta = max(0.0, min(1.0, delta))
        predicted = request.predict(delta) if request.predict is not None else None
        return DeltaDecision(delta=delta, predicted=predicted)

    # ------------------------------------------------------------------
    # Wall-clock seam
    # ------------------------------------------------------------------
    def query_started(self) -> float | None:
        """Timestamp the start of a query (``None`` without a policy clock)."""
        clock = self._policy.clock
        return None if clock is None else clock()

    def query_finished(self, started: float | None, predicted_seconds: float | None) -> None:
        """Report the measured duration of the query back to the policy."""
        clock = self._policy.clock
        if started is None or clock is None:
            return
        self._policy.observe(clock() - started, predicted_seconds)


def wall_clock() -> float:
    """The default real clock for production use (``time.perf_counter``)."""
    return time.perf_counter()


# ----------------------------------------------------------------------
# Persistence (checkpointing)
# ----------------------------------------------------------------------
def policy_state_dict(policy: BudgetPolicy) -> dict:
    """Serializable snapshot of a budget policy (configuration + dynamics).

    Clocks are process-local callables and are not persisted: a restored
    policy wakes up without wall-clock feedback until the caller re-injects
    one.  The learned corrections *are* persisted, so a restarted adaptive
    policy resumes from its calibrated state rather than from scratch.
    """
    if isinstance(policy, FixedDelta):
        return {"type": "FixedDelta", "delta": policy.delta}
    if isinstance(policy, FixedTime):
        return {
            "type": "FixedTime",
            "budget_seconds": policy.budget_seconds,
            "resolved_delta": policy._delta,
        }
    if isinstance(policy, TimeAdaptive):
        return {
            "type": "TimeAdaptive",
            "budget_seconds": policy.budget_seconds,
            "scan_fraction": policy.scan_fraction,
            "minimum_delta": policy.minimum_delta,
            "target_query_cost": policy.target_query_cost,
            "correction": policy.correction,
        }
    if isinstance(policy, CostModelGreedy):
        corrections = {}
        for phase, value in policy._corrections.items():
            key = getattr(phase, "value", None) or "__none__"
            corrections[str(key)] = float(value)
        return {
            "type": "CostModelGreedy",
            "interactivity_budget": policy.interactivity_budget,
            "scan_fraction": policy.scan_fraction,
            "minimum_delta": policy.minimum_delta,
            "smoothing": policy.smoothing,
            "correction_range": list(policy.correction_range),
            "corrections": corrections,
        }
    if isinstance(policy, BatchPool):
        return {
            "type": "BatchPool",
            "n_queries": policy.n_queries,
            "scan_fraction": policy.scan_fraction,
            "interactivity_budget": policy.interactivity_budget,
            "pool_seconds": policy.pool_seconds,
            "spent_seconds": policy.spent_seconds,
        }
    raise InvalidBudgetError(
        f"cannot checkpoint budget policy of type {type(policy).__name__}"
    )


def policy_from_state(state: dict) -> BudgetPolicy:
    """Rebuild a budget policy from :func:`policy_state_dict` output."""
    from repro.core.phase import IndexPhase

    kind = state.get("type")
    if kind == "FixedDelta":
        return FixedDelta(state["delta"])
    if kind == "FixedTime":
        policy = FixedTime(state["budget_seconds"])
        policy._delta = state.get("resolved_delta")
        return policy
    if kind == "TimeAdaptive":
        if state.get("budget_seconds") is not None and state.get("scan_fraction") is not None:
            # Fraction policies resolve budget_seconds in place; rebuild from
            # the fraction and restore the resolved seconds afterwards.
            policy = TimeAdaptive(
                scan_fraction=state["scan_fraction"],
                minimum_delta=state.get("minimum_delta", MINIMUM_DELTA),
            )
            policy.budget_seconds = state["budget_seconds"]
        elif state.get("budget_seconds") is not None:
            policy = TimeAdaptive(
                budget_seconds=state["budget_seconds"],
                minimum_delta=state.get("minimum_delta", MINIMUM_DELTA),
            )
        else:
            policy = TimeAdaptive(
                scan_fraction=state["scan_fraction"],
                minimum_delta=state.get("minimum_delta", MINIMUM_DELTA),
            )
        policy.target_query_cost = state.get("target_query_cost")
        policy.correction = float(state.get("correction", 1.0))
        return policy
    if kind == "CostModelGreedy":
        if state.get("interactivity_budget") is not None:
            policy = CostModelGreedy(
                interactivity_budget=state["interactivity_budget"],
                minimum_delta=state.get("minimum_delta", MINIMUM_DELTA),
                smoothing=state.get("smoothing", 0.4),
                correction_range=tuple(state.get("correction_range", (1.0, 4.0))),
            )
            policy.scan_fraction = state.get("scan_fraction")
        else:
            policy = CostModelGreedy(
                scan_fraction=state["scan_fraction"],
                minimum_delta=state.get("minimum_delta", MINIMUM_DELTA),
                smoothing=state.get("smoothing", 0.4),
                correction_range=tuple(state.get("correction_range", (1.0, 4.0))),
            )
        for key, value in state.get("corrections", {}).items():
            phase = None if key == "__none__" else IndexPhase(key)
            policy._corrections[phase] = float(value)
        return policy
    if kind == "BatchPool":
        policy = BatchPool(
            int(state["n_queries"]),
            scan_fraction=state.get("scan_fraction"),
            interactivity_budget=state.get("interactivity_budget"),
        )
        if state.get("pool_seconds") is not None:
            policy.pool_seconds = float(state["pool_seconds"])
        policy.spent_seconds = float(state.get("spent_seconds", 0.0))
        return policy
    raise InvalidBudgetError(f"unknown budget-policy state type {kind!r}")


class ManualClock:
    """A manually advanced clock for deterministic adaptive runs.

    Inject into :class:`TimeAdaptive` / :class:`CostModelGreedy` instead of
    a real clock to drive the wall-clock feedback loops reproducibly (the
    test suite uses it everywhere the adaptive path is exercised).
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        self.now += float(seconds)

    def __call__(self) -> float:
        return self.now
