"""Cost model formulas from Section 3 of the paper.

Each progressive indexing algorithm combines a small set of primitive cost
terms: sequentially scanning pages, sequentially writing pages, random
accesses while traversing auxiliary structures, appending to linked bucket
blocks, and copying elements into B+-tree levels.  :class:`CostModel` exposes
those primitives (parameterised by the calibrated
:class:`~repro.core.calibration.CostConstants`) so that the per-algorithm
cost models in the index implementations stay short, readable transcriptions
of the paper's formulas:

* creation phase of Progressive Quicksort:
  ``t_total = (1 - rho + alpha - delta) * t_scan + delta * t_pivot``
* refinement phase: ``t_total = t_lookup + alpha * t_scan + delta * t_swap``
* consolidation phase: ``t_total = t_lookup + alpha * t_scan + delta * t_copy``
* radix/bucket creation:
  ``t_total = (1 - rho - delta) * t_scan + alpha * t_bscan + delta * t_bucket``

All costs are expressed in seconds for a given number of elements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.calibration import DEFAULT_BLOCK_SIZE, CostConstants, simulated_constants


@dataclass(frozen=True)
class CostBreakdown:
    """A predicted query cost split into its components.

    Attributes
    ----------
    scan:
        Time spent scanning base-column or index data to answer the query.
    lookup:
        Time spent traversing auxiliary structures (pivot tree, bucket tree,
        binary search, B+-tree descent).
    indexing:
        Time spent on index construction or refinement (the indexing budget).
    merge:
        Time spent merging delta-store writes into the index (the
        mutable-substrate extension of the indexing budget: budget policies
        price merge work with exactly the same machinery that paces
        construction, so :class:`~repro.core.policy.CostModelGreedy` trades
        scanning vs. indexing vs. merging under one interactivity budget).
    decompress:
        Time spent decompressing column blocks on the scan path (non-zero
        only for paged compressed bases; priced so the greedy solver and
        the tau admission path stay honest out-of-core).
    """

    scan: float
    lookup: float
    indexing: float
    merge: float = 0.0
    decompress: float = 0.0

    @property
    def total(self) -> float:
        """Total predicted query time in seconds."""
        return self.scan + self.lookup + self.indexing + self.merge + self.decompress

    @property
    def maintenance(self) -> float:
        """Budgeted work of the query: construction plus delta merging."""
        return self.indexing + self.merge


class CostModel:
    """Primitive cost terms shared by all per-algorithm cost models.

    Parameters
    ----------
    constants:
        Calibrated or simulated machine constants.  Defaults to the
        deterministic :func:`~repro.core.calibration.simulated_constants`.
    block_size:
        Number of elements per linked bucket block (paper: ``sb``).
    """

    def __init__(
        self,
        constants: CostConstants | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.constants = constants or simulated_constants()
        self.constants.validate()
        self.block_size = int(block_size)
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")

    # ------------------------------------------------------------------
    # Primitive terms
    # ------------------------------------------------------------------
    def pages(self, n_elements: int) -> float:
        """Number of pages covering ``n_elements`` elements (fractional)."""
        return n_elements / self.constants.gamma

    def scan_time(self, n_elements: int) -> float:
        """Sequential, predicated scan of ``n_elements``: ``omega * N / gamma``."""
        return self.constants.omega * self.pages(n_elements)

    def write_time(self, n_elements: int) -> float:
        """Sequential write of ``n_elements``: ``kappa * N / gamma``."""
        return self.constants.kappa * self.pages(n_elements)

    def decompress_time(self, n_elements: int) -> float:
        """Block decompression of ``n_elements`` of a paged compressed base."""
        return self.constants.decompress * n_elements

    def pivot_time(self, n_elements: int) -> float:
        """Quicksort creation: read the column and write the pivoted copy.

        Paper: ``t_pivot = (kappa + omega) * N / gamma``.
        """
        return (self.constants.kappa + self.constants.omega) * self.pages(n_elements)

    def swap_time(self, n_elements: int) -> float:
        """Quicksort refinement: predicated in-place swaps of ``n_elements``.

        The paper approximates refinement as sequential page writes
        (``t_swap = kappa * N / gamma``), but the measured per-element cost
        of the progressive sorter is far above a bulk copy (pivot routing,
        piece bookkeeping, cache-sized direct sorts).  The calibrated swap
        constant σ carries exactly that primitive, so the budget policies —
        in particular the greedy solver targeting an interactivity budget —
        see refinement work at its real price: ``t_swap = sigma * N``.
        """
        return self.constants.sigma * n_elements

    def segment_sort_time(self, n_elements: int) -> float:
        """Sort ``n_elements`` in cache-sized segments: ``segment_sort * N``."""
        return self.constants.segment_sort * n_elements

    def tree_lookup_time(self, height: int) -> float:
        """Descend a pivot / bucket tree of ``height`` levels: ``h * phi``."""
        return max(0, height) * self.constants.phi

    def binary_search_time(self, n_elements: int) -> float:
        """Binary search over a sorted array: ``log2(N) * phi``."""
        if n_elements <= 1:
            return self.constants.phi
        return math.log2(n_elements) * self.constants.phi

    # Bucket-based algorithms ------------------------------------------
    def bucket_scan_time(self, n_elements: int) -> float:
        """Scan linked bucket blocks holding ``n_elements``.

        Paper: ``t_bscan = t_scan + phi * N / sb`` — a sequential scan plus a
        random access per block boundary.
        """
        return self.scan_time(n_elements) + self.constants.phi * (
            n_elements / self.block_size
        )

    def bucket_write_time(self, n_elements: int) -> float:
        """Append ``n_elements`` to radix buckets.

        Paper: ``t_bucket = (kappa + omega) * N / gamma + tau * N / sb`` — a
        read-write pass plus an allocation per block.  The substrate's
        scatter is a grouped argsort + bincount append, so the read-write
        term is priced with the measured per-element ``scatter`` primitive
        (the simulated constants keep it at exactly ``(kappa + omega) /
        gamma``, preserving the paper's formula).
        """
        return self.constants.scatter * n_elements + self.constants.tau * (
            n_elements / self.block_size
        )

    def equiheight_bucket_write_time(self, n_elements: int, n_buckets: int) -> float:
        """Append ``n_elements`` to equi-height buckets.

        The paper (Section 3.3) charges an extra ``log2(b)`` factor for the
        binary search locating each element's bucket.  This substrate routes
        through a grid-accelerated ``BoundsRouter`` instead — a verified
        gather, O(1) per element — so the measured routing cost is about one
        more scatter-scale pass over the data, not a ``log2(b)`` blow-up:
        ``t_equiheight = t_bucket + scatter * N``.
        """
        return self.bucket_write_time(n_elements) + self.constants.scatter * n_elements

    # Delta maintenance -------------------------------------------------
    def delta_absorb_time(self, n_delta: int) -> float:
        """Sort ``n_delta`` raw delta rows into the overlay's sorted buffers.

        One segment-sort-scale pass plus the sequential write of the merged
        buffer — the tier-1 merge every index family performs.
        """
        return self.segment_sort_time(n_delta) + self.write_time(n_delta)

    def delta_fold_time(self, n_base: int, n_delta: int) -> float:
        """Fold ``n_delta`` sorted delta rows into a structure of ``n_base``.

        A merge is one read-write pass over both inputs plus rebuilding the
        sampled cascade levels on top (a ``1/fanout`` fraction of the data,
        priced as one more strided copy of the merged size for simplicity).
        """
        merged = n_base + n_delta
        return self.scan_time(merged) + self.write_time(merged) + self.constants.phi * (
            merged / DEFAULT_BLOCK_SIZE
        )

    # Consolidation -----------------------------------------------------
    def btree_copy_count(self, n_elements: int, fanout: int) -> int:
        """Number of elements copied into upper B+-tree levels.

        Paper: ``N_copy = sum_{i=1..log_beta(n)} n / beta^i``.
        """
        if n_elements <= 1 or fanout <= 1:
            return 0
        total = 0
        level = n_elements
        while level > 1:
            level = level // fanout
            total += level
        return total

    def consolidation_copy_time(self, n_copy_elements: int) -> float:
        """Copy ``n_copy_elements`` into B+-tree levels.

        Each copied element is read with a random (strided) access from the
        level below and written sequentially to the level above.
        """
        return n_copy_elements * self.constants.phi + self.write_time(n_copy_elements)

    # ------------------------------------------------------------------
    # Composite helpers used by several algorithms
    # ------------------------------------------------------------------
    def creation_phase_cost(
        self,
        n_elements: int,
        rho: float,
        alpha: float,
        delta: float,
        index_write_time_full: float,
        indexed_scan_time_full: float | None = None,
    ) -> CostBreakdown:
        """Generic creation-phase cost.

        Parameters
        ----------
        n_elements:
            Column size ``N``.
        rho:
            Fraction of the column already indexed.
        alpha:
            Fraction of the *indexed* data that must be scanned for the query.
        delta:
            Fraction of the column indexed by this query.
        index_write_time_full:
            Time to move the entire column into the index (``t_pivot`` or
            ``t_bucket``-style term); the indexing cost is ``delta`` times it.
        indexed_scan_time_full:
            Time to scan the entire indexed structure; defaults to the plain
            column scan time (Progressive Quicksort), bucket algorithms pass
            :meth:`bucket_scan_time`.
        """
        base_scan_fraction = max(0.0, 1.0 - rho - delta)
        scan = base_scan_fraction * self.scan_time(n_elements)
        indexed_scan_full = (
            self.scan_time(n_elements)
            if indexed_scan_time_full is None
            else indexed_scan_time_full
        )
        scan += alpha * indexed_scan_full
        indexing = delta * index_write_time_full
        return CostBreakdown(scan=scan, lookup=0.0, indexing=indexing)

    def refinement_phase_cost(
        self,
        alpha: float,
        delta: float,
        lookup_time: float,
        indexed_scan_time_full: float,
        refine_time_full: float,
    ) -> CostBreakdown:
        """Generic refinement-phase cost: ``t_lookup + alpha*t_scan + delta*t_refine``."""
        return CostBreakdown(
            scan=alpha * indexed_scan_time_full,
            lookup=lookup_time,
            indexing=delta * refine_time_full,
        )
