"""Hardware-constant calibration for the cost models.

Table 1 of the paper parameterises the cost models with machine constants:

========  =====================================================
``omega``  cost of a sequential page read (seconds)
``kappa``  cost of a sequential page write (seconds)
``phi``    cost of a random access (seconds)
``gamma``  number of elements per page
``sigma``  cost of swapping two elements (seconds)
``tau``    cost of a memory (block) allocation (seconds)
========  =====================================================

Beyond the paper's table, the substrate carries two extra measured
primitives: ``segment_sort``, the per-element cost of sorting cache-sized
segments (the direct-sort fast path every refinement ends in), and
``scatter``, the per-element cost of the grouped bucket scatter every
radix/bucket algorithm is built on.

The original system measures these at program start-up on the bare metal.
Our execution substrate is NumPy, so :func:`calibrate` measures the *actual
engine primitives* the cost formulas describe: ``omega`` from a predicated
range scan (mask + masked sum, mirroring ``Column.scan_range``), ``kappa``
from the creation-phase partition copy (mask, split, write both ends),
``sigma`` from a full run of the progressive sorter (the refinement
primitive), ``phi`` from a random gather and ``tau`` from block
allocations.  The resulting constants make the cost model predict the time
of *this* substrate — which is what the cost-model-validation experiments
(Figures 8 and 9) check, and what the cost-model-greedy budget policy
relies on to land every query on its interactivity threshold.

For unit tests and fully deterministic simulations,
:func:`simulated_constants` returns a fixed, machine-independent set of
constants with realistic relative magnitudes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CalibrationError

#: Number of 8-byte elements per "page" used throughout the cost model.
#: 512 elements x 8 bytes = 4 KiB, a conventional page size.
DEFAULT_ELEMENTS_PER_PAGE = 512

#: Default block size (elements) of the linked bucket blocks (paper: ``sb``).
DEFAULT_BLOCK_SIZE = 4096

#: Number of elements used by :func:`calibrate` for its measurements.
_CALIBRATION_SIZE = 1 << 21


@dataclass(frozen=True)
class CostConstants:
    """Measured (or simulated) machine constants for the cost model.

    All ``*_page`` costs are seconds per page of :attr:`elements_per_page`
    elements; ``random_access`` and ``swap`` are seconds per element;
    ``allocation`` is seconds per block allocation.
    """

    sequential_read_page: float
    sequential_write_page: float
    random_access: float
    swap: float
    allocation: float
    elements_per_page: int = DEFAULT_ELEMENTS_PER_PAGE
    #: Per-element cost of sorting a cache-sized segment (seconds).
    segment_sort: float = 2e-9
    #: Per-element cost of the grouped bucket scatter (seconds).  The
    #: simulated default equals the page-write approximation it refines,
    #: ``(kappa + omega) / gamma``, so simulated predictions are unchanged.
    scatter: float = 2.9296875e-9
    #: Per-element cost of decompressing a compressed column block
    #: (seconds).  Only enters predictions for paged compressed bases; the
    #: simulated default approximates FOR/DICT decode at a few GB/s.
    decompress: float = 5e-10
    source: str = field(default="simulated", compare=False)

    # Short aliases matching the paper's notation -----------------------
    @property
    def omega(self) -> float:
        """Cost of a sequential page read (paper: ω)."""
        return self.sequential_read_page

    @property
    def kappa(self) -> float:
        """Cost of a sequential page write (paper: κ)."""
        return self.sequential_write_page

    @property
    def phi(self) -> float:
        """Cost of a random access (paper: φ)."""
        return self.random_access

    @property
    def gamma(self) -> int:
        """Elements per page (paper: γ)."""
        return self.elements_per_page

    @property
    def sigma(self) -> float:
        """Cost of swapping two elements (paper: σ)."""
        return self.swap

    @property
    def tau(self) -> float:
        """Cost of a block allocation (paper: τ)."""
        return self.allocation

    def validate(self) -> None:
        """Raise :class:`CalibrationError` if any constant is non-positive."""
        fields = {
            "sequential_read_page": self.sequential_read_page,
            "sequential_write_page": self.sequential_write_page,
            "random_access": self.random_access,
            "swap": self.swap,
            "allocation": self.allocation,
            "elements_per_page": self.elements_per_page,
            "segment_sort": self.segment_sort,
            "scatter": self.scatter,
            "decompress": self.decompress,
        }
        for key, value in fields.items():
            if value <= 0:
                raise CalibrationError(f"calibrated constant {key} must be positive, got {value}")


def simulated_constants() -> CostConstants:
    """Deterministic constants with realistic relative magnitudes.

    The absolute values approximate a NumPy substrate scanning a few GB/s:
    a 4 KiB page read costs ~0.5 µs, a write ~1 µs, a random access ~60 ns.
    Tests and documentation examples use these so results do not depend on
    the machine the suite runs on.
    """
    return CostConstants(
        sequential_read_page=5e-7,
        sequential_write_page=1e-6,
        # Per-element refinement cost; chosen so the simulated
        # swap_time(N) = sigma * N stays on the scale of the page-write
        # approximation it replaced (kappa / gamma ~ 2e-9 per element).
        swap=2e-9,
        random_access=6e-8,
        allocation=2e-6,
        elements_per_page=DEFAULT_ELEMENTS_PER_PAGE,
        segment_sort=2e-9,
        scatter=2.9296875e-9,
        decompress=5e-10,
        source="simulated",
    )


def _time_operation(operation, repetitions: int = 3) -> float:
    """Return the minimum wall-clock time of ``operation`` over repetitions."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def calibrate(
    n_elements: int = _CALIBRATION_SIZE,
    elements_per_page: int = DEFAULT_ELEMENTS_PER_PAGE,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rng: np.random.Generator | None = None,
) -> CostConstants:
    """Measure the cost-model constants on the current machine.

    Parameters
    ----------
    n_elements:
        Size of the scratch array used for the measurements.
    elements_per_page:
        Page granularity used to normalise sequential costs.
    block_size:
        Allocation granularity used to measure ``tau``.
    rng:
        Random generator for the random-access pattern (seeded by default so
        repeated calibrations measure the same access pattern).

    Returns
    -------
    CostConstants
        Constants with ``source="measured"``.
    """
    if n_elements < elements_per_page * 16:
        raise CalibrationError(
            "calibration array too small: need at least 16 pages of elements"
        )
    rng = rng or np.random.default_rng(42)
    data = rng.integers(0, n_elements, size=n_elements, dtype=np.int64)
    pages = n_elements / elements_per_page

    # omega: the engine's predicated scan (mask + masked sum), mirroring
    # Column.scan_range — not a bare np.sum, which is several times faster
    # than the real query primitive.
    low = n_elements // 4
    high = 3 * (n_elements // 4)

    def _predicated_scan() -> None:
        mask = (data >= low) & (data <= high)
        if np.count_nonzero(mask):
            data[mask].sum()

    scan_seconds = _time_operation(_predicated_scan)

    # kappa: the creation-phase partition copy (mask, split, write both
    # ends of the target array) minus the scan share it implies.
    pivot = n_elements // 2
    copy_target = np.empty_like(data)

    def _partition_copy() -> None:
        mask = data < pivot
        lows = data[mask]
        highs = data[~mask]
        copy_target[: lows.size] = lows
        copy_target[n_elements - highs.size :] = highs

    partition_seconds = _time_operation(_partition_copy)
    write_seconds = max(partition_seconds - scan_seconds, scan_seconds * 0.1)

    random_indices = rng.integers(0, n_elements, size=n_elements // 8)
    gather_seconds = _time_operation(lambda: data[random_indices])

    swap_per_element = _measure_sorter_primitive(data, rng)

    # segment_sort: np.sort over cache-sized segments (the direct-sort fast
    # path that finishes every refinement), per element.
    segment_elements = 2048
    n_segments = max(1, min(64, n_elements // segment_elements))
    sort_scratch = data[: n_segments * segment_elements].reshape(n_segments, segment_elements)

    def _sort_segments() -> None:
        np.sort(sort_scratch, axis=1)

    segment_sort_seconds = _time_operation(_sort_segments)
    segment_sort_per_element = segment_sort_seconds / sort_scratch.size

    scatter_per_element = _measure_scatter_primitive(data, rng, block_size)

    # decompress: FOR-decode of one compressed block (widen + add the
    # reference), per element — the extra work a paged base adds per scan.
    narrow = (data[:65536] & 0xFF).astype(np.uint8)

    def _for_decode() -> None:
        narrow.astype(np.int64) + np.int64(7)

    decompress_seconds = _time_operation(_for_decode)
    decompress_per_element = decompress_seconds / narrow.size

    n_allocations = 64

    def _allocate() -> None:
        for _ in range(n_allocations):
            np.empty(block_size, dtype=np.int64)

    allocation_seconds = _time_operation(_allocate)

    constants = CostConstants(
        sequential_read_page=max(scan_seconds / pages, 1e-12),
        sequential_write_page=max(write_seconds / pages, 1e-12),
        random_access=max(gather_seconds / random_indices.size, 1e-12),
        swap=max(swap_per_element, 1e-12),
        allocation=max(allocation_seconds / n_allocations, 1e-12),
        elements_per_page=elements_per_page,
        segment_sort=max(segment_sort_per_element, 1e-12),
        scatter=max(scatter_per_element, 1e-12),
        decompress=max(decompress_per_element, 1e-12),
        source="measured",
    )
    constants.validate()
    return constants


def _measure_scatter_primitive(
    data: np.ndarray, rng: np.random.Generator, block_size: int
) -> float:
    """Per-element cost of the grouped bucket scatter.

    Runs the actual :meth:`~repro.progressive.blocks.BucketSet.scatter`
    (grouped argsort + bincount append) over a sample with uniform random
    bucket ids — the primitive behind every radix/bucket creation pass.
    Imported lazily to keep :mod:`repro.core` free of engine dependencies.
    """
    from repro.progressive.blocks import BucketSet

    # Measure at (close to) working-set scale: small samples stay
    # cache-resident and under-measure the out-of-cache scatter by 2x+.
    sample_size = min(data.size, 1 << 20)
    sample = data[:sample_size]
    ids = rng.integers(0, 64, size=sample_size)

    def _scatter() -> None:
        buckets = BucketSet(64, block_size=block_size, dtype=sample.dtype)
        buckets.scatter(sample, ids)

    seconds = _time_operation(_scatter)
    return seconds / sample_size


def _measure_sorter_primitive(data: np.ndarray, rng: np.random.Generator) -> float:
    """Per-element cost of the refinement primitive (the progressive sorter).

    Runs the actual :class:`~repro.progressive.sorter.ProgressiveSorter` to
    completion over a pivot-partitioned sample and divides by the element
    count — this is the σ that prices ``delta * t_swap`` refinement work.
    Imported lazily to keep :mod:`repro.core` free of engine dependencies.
    """
    from repro.progressive.sorter import ProgressiveSorter

    # As with the scatter primitive, measure at out-of-cache scale.
    sample_size = min(data.size, 1 << 19)
    sample = data[:sample_size]
    pivot = float(np.median(sample))
    value_low = float(sample.min())
    value_high = float(sample.max())
    if not value_high > value_low:
        # Degenerate constant column: the sorter would finish instantly;
        # fall back to a conservative copy-scale estimate.
        return 2e-9
    mask = sample < pivot
    partitioned = np.concatenate([sample[mask], sample[~mask]])
    boundary = int(np.count_nonzero(mask))

    def _refine_fully() -> None:
        scratch = partitioned.copy()
        sorter = ProgressiveSorter.from_partitioned(
            scratch,
            boundary=boundary,
            pivot=pivot,
            value_low=value_low,
            value_high=value_high,
        )
        while not sorter.is_sorted:
            sorter.refine(scratch.size)

    seconds = _time_operation(_refine_fully)
    return seconds / sample_size
