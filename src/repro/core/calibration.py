"""Hardware-constant calibration for the cost models.

Table 1 of the paper parameterises the cost models with machine constants:

========  =====================================================
``omega``  cost of a sequential page read (seconds)
``kappa``  cost of a sequential page write (seconds)
``phi``    cost of a random access (seconds)
``gamma``  number of elements per page
``sigma``  cost of swapping two elements (seconds)
``tau``    cost of a memory (block) allocation (seconds)
========  =====================================================

The original system measures these at program start-up on the bare metal.
Our execution substrate is NumPy, so :func:`calibrate` measures the same
operations expressed as NumPy kernels (sequential reduction, sequential copy,
gather with random indices, permutation writes, block allocation).  The
resulting constants make the cost model predict the time of *this* substrate,
which is what the cost-model-validation experiments (Figures 8 and 9) check.

For unit tests and fully deterministic simulations,
:func:`simulated_constants` returns a fixed, machine-independent set of
constants with realistic relative magnitudes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CalibrationError

#: Number of 8-byte elements per "page" used throughout the cost model.
#: 512 elements x 8 bytes = 4 KiB, a conventional page size.
DEFAULT_ELEMENTS_PER_PAGE = 512

#: Default block size (elements) of the linked bucket blocks (paper: ``sb``).
DEFAULT_BLOCK_SIZE = 4096

#: Number of elements used by :func:`calibrate` for its measurements.
_CALIBRATION_SIZE = 1 << 21


@dataclass(frozen=True)
class CostConstants:
    """Measured (or simulated) machine constants for the cost model.

    All ``*_page`` costs are seconds per page of :attr:`elements_per_page`
    elements; ``random_access`` and ``swap`` are seconds per element;
    ``allocation`` is seconds per block allocation.
    """

    sequential_read_page: float
    sequential_write_page: float
    random_access: float
    swap: float
    allocation: float
    elements_per_page: int = DEFAULT_ELEMENTS_PER_PAGE
    source: str = field(default="simulated", compare=False)

    # Short aliases matching the paper's notation -----------------------
    @property
    def omega(self) -> float:
        """Cost of a sequential page read (paper: ω)."""
        return self.sequential_read_page

    @property
    def kappa(self) -> float:
        """Cost of a sequential page write (paper: κ)."""
        return self.sequential_write_page

    @property
    def phi(self) -> float:
        """Cost of a random access (paper: φ)."""
        return self.random_access

    @property
    def gamma(self) -> int:
        """Elements per page (paper: γ)."""
        return self.elements_per_page

    @property
    def sigma(self) -> float:
        """Cost of swapping two elements (paper: σ)."""
        return self.swap

    @property
    def tau(self) -> float:
        """Cost of a block allocation (paper: τ)."""
        return self.allocation

    def validate(self) -> None:
        """Raise :class:`CalibrationError` if any constant is non-positive."""
        fields = {
            "sequential_read_page": self.sequential_read_page,
            "sequential_write_page": self.sequential_write_page,
            "random_access": self.random_access,
            "swap": self.swap,
            "allocation": self.allocation,
            "elements_per_page": self.elements_per_page,
        }
        for key, value in fields.items():
            if value <= 0:
                raise CalibrationError(f"calibrated constant {key} must be positive, got {value}")


def simulated_constants() -> CostConstants:
    """Deterministic constants with realistic relative magnitudes.

    The absolute values approximate a NumPy substrate scanning a few GB/s:
    a 4 KiB page read costs ~0.5 µs, a write ~1 µs, a random access ~60 ns.
    Tests and documentation examples use these so results do not depend on
    the machine the suite runs on.
    """
    return CostConstants(
        sequential_read_page=5e-7,
        sequential_write_page=1e-6,
        random_access=6e-8,
        swap=1.2e-7,
        allocation=2e-6,
        elements_per_page=DEFAULT_ELEMENTS_PER_PAGE,
        source="simulated",
    )


def _time_operation(operation, repetitions: int = 3) -> float:
    """Return the minimum wall-clock time of ``operation`` over repetitions."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def calibrate(
    n_elements: int = _CALIBRATION_SIZE,
    elements_per_page: int = DEFAULT_ELEMENTS_PER_PAGE,
    block_size: int = DEFAULT_BLOCK_SIZE,
    rng: np.random.Generator | None = None,
) -> CostConstants:
    """Measure the cost-model constants on the current machine.

    Parameters
    ----------
    n_elements:
        Size of the scratch array used for the measurements.
    elements_per_page:
        Page granularity used to normalise sequential costs.
    block_size:
        Allocation granularity used to measure ``tau``.
    rng:
        Random generator for the random-access pattern (seeded by default so
        repeated calibrations measure the same access pattern).

    Returns
    -------
    CostConstants
        Constants with ``source="measured"``.
    """
    if n_elements < elements_per_page * 16:
        raise CalibrationError(
            "calibration array too small: need at least 16 pages of elements"
        )
    rng = rng or np.random.default_rng(42)
    data = rng.integers(0, n_elements, size=n_elements, dtype=np.int64)
    pages = n_elements / elements_per_page

    scan_seconds = _time_operation(lambda: np.sum(data))
    copy_target = np.empty_like(data)
    write_seconds = _time_operation(lambda: np.copyto(copy_target, data))

    random_indices = rng.integers(0, n_elements, size=n_elements // 8)
    gather_seconds = _time_operation(lambda: data[random_indices])

    permutation = rng.permutation(n_elements // 8)
    scratch = data[: n_elements // 8].copy()
    swap_source = scratch.copy()

    def _permute() -> None:
        scratch[permutation] = swap_source

    swap_seconds = _time_operation(_permute)

    n_allocations = 64

    def _allocate() -> None:
        for _ in range(n_allocations):
            np.empty(block_size, dtype=np.int64)

    allocation_seconds = _time_operation(_allocate)

    constants = CostConstants(
        sequential_read_page=max(scan_seconds / pages, 1e-12),
        sequential_write_page=max(write_seconds / pages, 1e-12),
        random_access=max(gather_seconds / random_indices.size, 1e-12),
        swap=max(swap_seconds / permutation.size, 1e-12),
        allocation=max(allocation_seconds / n_allocations, 1e-12),
        elements_per_page=elements_per_page,
        source="measured",
    )
    constants.validate()
    return constants
