"""Progressive Indexes — a reproduction of Holanda et al., VLDB 2019.

This package re-implements "Progressive Indexes: Indexing for Interactive
Data Analysis" (PVLDB 12(13), 2019) as a stand-alone Python library:

* the four progressive indexing algorithms (Quicksort, Radixsort MSD,
  Radixsort LSD, Bucketsort) with their per-phase cost models and the fixed /
  adaptive indexing budgets (:mod:`repro.progressive`, :mod:`repro.core`);
* the adaptive-indexing comparators from the database-cracking family
  (:mod:`repro.cracking`) and the full-scan / full-index baselines
  (:mod:`repro.baselines`);
* the B+-tree substrate (:mod:`repro.btree`);
* the mutable column substrate — delta-store writes with snapshot-versioned
  reads and budget-priced progressive merging (:mod:`repro.storage`,
  :mod:`repro.core.overlay`);
* the synthetic and SkyServer-like workload generators, including the
  ``MixedReadWrite`` update-heavy pattern (:mod:`repro.workloads`);
* the execution engine, metrics and the Figure 11 decision tree
  (:mod:`repro.engine`);
* drivers regenerating every table and figure of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart
----------
>>> import numpy as np
>>> from repro import Column, IndexingSession
>>> data = np.random.default_rng(0).integers(0, 1_000_000, size=100_000)
>>> session = IndexingSession(Column(data, name="ra"))
>>> session.create_index("ra", method="PQ", budget_fraction=0.2)   # doctest: +ELLIPSIS
<repro.progressive.quicksort.ProgressiveQuicksort object at ...>
>>> answer = session.between("ra", 1_000, 50_000)
>>> answer.count == int(((data >= 1_000) & (data <= 50_000)).sum())
True
"""

from repro.baselines import FullIndex, FullScan
from repro.btree import BPlusTree, CascadeTree
from repro.core import (
    AdaptiveBudget,
    BatchBudget,
    BatchPool,
    BudgetController,
    BudgetPolicy,
    ConjunctionResult,
    CostBreakdown,
    CostConstants,
    CostModel,
    CostModelGreedy,
    FixedBudget,
    FixedDelta,
    FixedTime,
    IndexLifecycle,
    IndexPhase,
    Predicate,
    PredicateVector,
    QueryResult,
    TimeAdaptive,
    calibrate,
    point,
    range_query,
    simulated_constants,
)
from repro.cracking import (
    AdaptiveAdaptiveIndexing,
    CoarseGranularIndex,
    ProgressiveStochasticCracking,
    StandardCracking,
    StochasticCracking,
)
from repro.engine import (
    ALGORITHMS,
    BatchExecutor,
    BatchResult,
    IndexingSession,
    ReaderView,
    SharedEngine,
    WorkloadExecutor,
    WriterHandle,
    create_index,
    create_sharded_index,
    recommend_index,
)
from repro.serve import ConnectionClass, QueryServer, ServiceClient
from repro.shard import (
    ShardedColumn,
    ShardedIndex,
    ShardRouter,
    build_sharded_index,
    shard_table,
)
from repro.progressive import (
    ProgressiveBucketsort,
    ProgressiveQuicksort,
    ProgressiveRadixsortLSD,
    ProgressiveRadixsortMSD,
)
from repro.persist import Database, WriteAheadLog
from repro.storage import Column, ColumnSnapshot, DeltaStore, Table
from repro.workloads import (
    Workload,
    WriteOp,
    conjunctive_queries,
    generate_pattern,
    iter_batches,
    predicate_vector,
    skyserver_data,
    skyserver_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdaptiveAdaptiveIndexing",
    "AdaptiveBudget",
    "BPlusTree",
    "BatchBudget",
    "BatchExecutor",
    "BatchPool",
    "BudgetController",
    "BudgetPolicy",
    "BatchResult",
    "CascadeTree",
    "CoarseGranularIndex",
    "Column",
    "ColumnSnapshot",
    "ConnectionClass",
    "CostBreakdown",
    "CostModelGreedy",
    "ConjunctionResult",
    "CostConstants",
    "DeltaStore",
    "CostModel",
    "Database",
    "FixedBudget",
    "FixedDelta",
    "FixedTime",
    "FullIndex",
    "FullScan",
    "IndexLifecycle",
    "IndexPhase",
    "IndexingSession",
    "Predicate",
    "PredicateVector",
    "ProgressiveBucketsort",
    "ProgressiveQuicksort",
    "ProgressiveRadixsortLSD",
    "ProgressiveRadixsortMSD",
    "ProgressiveStochasticCracking",
    "QueryResult",
    "QueryServer",
    "ReaderView",
    "ServiceClient",
    "SharedEngine",
    "ShardRouter",
    "ShardedColumn",
    "ShardedIndex",
    "StandardCracking",
    "StochasticCracking",
    "Table",
    "TimeAdaptive",
    "Workload",
    "WriteAheadLog",
    "WriteOp",
    "WriterHandle",
    "WorkloadExecutor",
    "build_sharded_index",
    "calibrate",
    "conjunctive_queries",
    "create_index",
    "create_sharded_index",
    "generate_pattern",
    "iter_batches",
    "point",
    "predicate_vector",
    "range_query",
    "recommend_index",
    "shard_table",
    "simulated_constants",
    "skyserver_data",
    "skyserver_workload",
    "__version__",
]
