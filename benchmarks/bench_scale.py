"""Multi-core scaling: sharded progressive indexing over partitioned columns.

The sharded execution layer partitions a column into K range (or hash)
shards, builds one progressive index per shard, and routes predicates
through delta-aware min/max zone maps so untouched shards are pruned
outright.  This benchmark measures the three properties that layer claims:

* **scaling** — construction-to-convergence and post-convergence batch
  scans over the parallel worker pool vs. the identical serial executor.
  The honest yardstick is ``min(workers, shards, cpu_count)``: a gate of
  ``0.6 x`` that effective parallelism is enforced whenever more than one
  core is actually available, and skipped (but still recorded) on
  single-core runners where "parallel" can only add IPC overhead.
* **pruning** — a clustered narrow-band workload on a range layout must
  prune at least half the shards per query (deterministic, always gated)
  and beat the same predicates on a hash layout, where every shard spans
  the full domain and nothing can be pruned.
* **pooled latency** — under the pooled interactivity budget τ, one τ is
  split across the *touched* shards of each query (pruned shards donate
  their slice), so per-query latency must stay within a small factor of τ
  rather than K x τ.

Zero correctness deviation is a precondition for every timing number:
each arm's answers are checked against a brute-force NumPy oracle before
its clock readings count.  Results go to ``BENCH_scale.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata
from repro.core.calibration import calibrate, simulated_constants
from repro.core.policy import FixedDelta
from repro.core.query import Predicate
from repro.shard import build_sharded_index, shard_column
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data

#: Safety cap on the convergence workload.
MAX_CONVERGENCE_QUERIES = 600


def _oracle(data: np.ndarray, low: float, high: float) -> tuple[float, int]:
    mask = (data >= low) & (data <= high)
    count = int(mask.sum())
    if data.dtype.kind in "iu":
        return int(data[mask].sum(dtype=np.int64)) if count else 0, count
    return float(data[mask].sum()) if count else 0.0, count


def _check(result, data: np.ndarray, low: float, high: float, context: str) -> None:
    want_sum, want_count = _oracle(data, low, high)
    if result.count != want_count:
        raise AssertionError(
            f"{context}: count deviates at [{low}, {high}]: "
            f"got {result.count}, want {want_count}"
        )
    if data.dtype.kind in "iu":
        exact = int(result.value_sum) == int(want_sum)
    else:
        exact = abs(result.value_sum - want_sum) <= 1e-9 * max(1.0, abs(want_sum))
    if not exact:
        raise AssertionError(
            f"{context}: sum deviates at [{low}, {high}]: "
            f"got {result.value_sum}, want {want_sum}"
        )


def _convergence_workload(rng, domain_low, domain_high, n_queries):
    width = 0.05 * (domain_high - domain_low)
    lows = rng.uniform(domain_low, domain_high - width, n_queries)
    return [(float(low), float(low + width)) for low in lows]


def run_convergence_arm(data, workload, *, shards, parallel, workers,
                        constants, verify_first=8) -> dict:
    """Time construction to convergence; returns wall clock + shard stats."""
    column = shard_column(Column(data, name="value"), shards)
    started = time.perf_counter()
    index = build_sharded_index(
        column, "PQ", parallel=parallel, workers=workers,
        budget=FixedDelta(0.25), constants=constants,
    )
    startup = time.perf_counter() - started
    try:
        queries = 0
        started = time.perf_counter()
        for low, high in workload:
            result = index.query(Predicate(low, high))
            if queries < verify_first:
                _check(result, data, low, high,
                       f"{'parallel' if parallel else 'serial'} construction")
            queries += 1
            if index.converged:
                break
        elapsed = time.perf_counter() - started
        if not index.converged:
            raise AssertionError(
                f"index failed to converge within {queries} queries"
            )
        return {
            "startup_seconds": startup,
            "elapsed_seconds": elapsed,
            "queries_to_convergence": queries,
            "column": column,
            "index": index,
        }
    except BaseException:
        index.close()
        column.close()
        raise


def run_batch_arm(index, data, rng, domain, n_batch, verify_first=32) -> dict:
    """Time a post-convergence predicate batch through ``execute_batch``."""
    domain_low, domain_high = domain
    width = 0.05 * (domain_high - domain_low)
    lows = rng.uniform(domain_low, domain_high - width, n_batch)
    highs = lows + width
    started = time.perf_counter()
    results = index.execute_batch(lows, highs)
    elapsed = time.perf_counter() - started
    for i in range(min(verify_first, n_batch)):
        _check(results[i], data, lows[i], highs[i], "batch scan")
    return {
        "n_queries": int(n_batch),
        "elapsed_seconds": elapsed,
        "queries_per_second": n_batch / elapsed if elapsed > 0 else float("inf"),
    }


def run_pruning_arm(data, rng, *, shards, n_queries, constants) -> dict:
    """Clustered narrow-band predicates: range layout (prunable) vs. hash.

    Both arms replay the *same* predicates against the same data under the
    same per-shard budget policy, during the construction-heavy early
    queries where unpruned shards must still scan.  The hash layout's
    shards all span the full value domain, so its zone maps can prune
    nothing — it is the built-in "routing off" baseline.
    """
    domain_low, domain_high = float(data.min()), float(data.max())
    span = domain_high - domain_low
    center = domain_low + 0.3 * span
    width = 0.02 * span
    lows = rng.uniform(center - width, center + width, n_queries)
    predicates = [(float(low), float(low + width)) for low in lows]

    timings = {}
    pruned_fraction = {}
    for kind in ("range", "hash"):
        column = shard_column(Column(data, name="value"), shards, kind=kind)
        index = build_sharded_index(
            column, "PQ", budget=FixedDelta(0.25), constants=constants,
        )
        try:
            started = time.perf_counter()
            for low, high in predicates:
                _check(index.query(Predicate(low, high)), data, low, high,
                       f"pruning arm ({kind} layout)")
            timings[kind] = time.perf_counter() - started
            pruned_fraction[kind] = index.router.pruned_fraction()
        finally:
            index.close()
            column.close()
    return {
        "n_queries": int(n_queries),
        "clustered_band": [float(center - width), float(center + 2 * width)],
        "range_seconds": timings["range"],
        "hash_seconds": timings["hash"],
        "pruned_fraction_range": pruned_fraction["range"],
        "pruned_fraction_hash": pruned_fraction["hash"],
        "pruning_speedup": (
            timings["hash"] / timings["range"] if timings["range"] > 0
            else float("inf")
        ),
    }


def run_latency_arm(data, rng, *, shards, n_queries, constants) -> dict:
    """Per-query latency under the pooled interactivity budget τ."""
    domain_low, domain_high = float(data.min()), float(data.max())
    # tau = (1 + 0.2) * t_scan, with t_scan measured on this machine.
    started = time.perf_counter()
    reps = 3
    for _ in range(reps):
        mask = (data >= domain_low) & (data <= domain_high)
        mask.sum()
    t_scan = (time.perf_counter() - started) / reps
    tau = 1.2 * t_scan

    column = shard_column(Column(data, name="value"), shards)
    index = build_sharded_index(
        column, "PQ", interactivity_budget=tau, constants=constants,
    )
    try:
        width = 0.05 * (domain_high - domain_low)
        latencies = np.empty(n_queries)
        for i in range(n_queries):
            low = float(rng.uniform(domain_low, domain_high - width))
            t0 = time.perf_counter()
            result = index.query(Predicate(low, low + width))
            latencies[i] = time.perf_counter() - t0
            if i < 8:
                _check(result, data, low, low + width, "latency arm")
        return {
            "n_queries": int(n_queries),
            "tau_seconds": tau,
            "scan_seconds": t_scan,
            "latency_p50": float(np.percentile(latencies, 50)),
            "latency_p99": float(np.percentile(latencies, 99)),
            "latency_max": float(latencies.max()),
            "pool": index.budget.snapshot(),
        }
    finally:
        index.close()
        column.close()


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000_000,
                        help="column size (default: 10_000_000)")
    parser.add_argument("--shards", type=int, default=8,
                        help="partition count K (default: 8)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes of the parallel arm "
                             "(default: cpu count, clamped to K)")
    parser.add_argument("--n-batch", type=int, default=2_000,
                        help="predicates in the post-convergence batch "
                             "(default: 2000)")
    parser.add_argument("--n-latency", type=int, default=300,
                        help="queries of the pooled-tau latency arm "
                             "(default: 300)")
    parser.add_argument("--scaling-factor", type=float, default=0.6,
                        help="required speedup per effective core in full "
                             "runs (default: 0.6)")
    parser.add_argument("--min-smoke-speedup", type=float, default=1.3,
                        help="required parallel/serial speedup in --smoke "
                             "runs when >1 core is available (default: 1.3)")
    parser.add_argument("--min-pruned", type=float, default=0.5,
                        help="required pruned-shard fraction on the "
                             "clustered workload (default: 0.5)")
    parser.add_argument("--min-pruning-speedup", type=float, default=1.2,
                        help="required range/hash layout speedup on the "
                             "clustered workload, full runs only "
                             "(default: 1.2)")
    parser.add_argument("--latency-factor", type=float, default=2.0,
                        help="allowed p99-latency / tau ratio, full runs "
                             "only (default: 2.0)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: 2M rows, 4 shards, reduced "
                             "workloads, wall-clock gates only when more "
                             "than one core is available, no JSON output")
    parser.add_argument("--simulated-constants", action="store_true",
                        help="skip cost-model calibration")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: BENCH_scale.json "
                             "next to the repository root; omitted in "
                             "--smoke runs unless given explicitly)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 2_000_000)
        args.shards = min(args.shards, 4)
        args.n_batch = min(args.n_batch, 500)
        args.n_latency = min(args.n_latency, 100)
        if args.workers is None:
            args.workers = 2
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    cpu_count = os.cpu_count() or 1
    workers = args.workers
    if workers is None:
        workers = cpu_count
    workers = max(1, min(workers, args.shards))
    effective = min(workers, args.shards, cpu_count)

    rng = np.random.default_rng(args.seed)
    data = uniform_data(args.rows, rng=rng)
    domain = float(data.min()), float(data.max())
    constants = simulated_constants() if args.simulated_constants else calibrate()

    print(f"scale: {args.rows} rows, {args.shards} shards, {workers} workers, "
          f"{cpu_count} cores (effective parallelism {effective})")

    workload = _convergence_workload(
        np.random.default_rng(args.seed + 1), *domain, MAX_CONVERGENCE_QUERIES
    )

    arms = {}
    failures = []
    construction_speedup = batch_speedup = None
    pruning = latency = None
    gates_enforced = False
    try:
        for label, parallel in (("serial", False), ("parallel", True)):
            arm = run_convergence_arm(
                data, workload, shards=args.shards, parallel=parallel,
                workers=workers if parallel else None, constants=constants,
            )
            index, column = arm.pop("index"), arm.pop("column")
            try:
                arm["batch"] = run_batch_arm(
                    index, data, np.random.default_rng(args.seed + 2),
                    domain, args.n_batch,
                )
            finally:
                index.close()
                column.close()
            arms[label] = arm
            print(f"  {label:>8}: converged in {arm['queries_to_convergence']} "
                  f"queries / {arm['elapsed_seconds']:.3f}s "
                  f"(startup {arm['startup_seconds']:.3f}s), batch "
                  f"{arm['batch']['queries_per_second']:.0f} q/s")

        construction_speedup = (
            arms["serial"]["elapsed_seconds"] / arms["parallel"]["elapsed_seconds"]
            if arms["parallel"]["elapsed_seconds"] > 0 else float("inf")
        )
        batch_speedup = (
            arms["parallel"]["batch"]["queries_per_second"]
            / arms["serial"]["batch"]["queries_per_second"]
        )
        print(f"  speedup: construction {construction_speedup:.2f}x, "
              f"batch scan {batch_speedup:.2f}x")

        # Wall-clock scaling gates need real cores to be meaningful; a
        # single-core runner can only measure IPC overhead, so the gates
        # are recorded as skipped rather than silently passed.
        gates_enforced = effective >= 2
        if gates_enforced:
            if args.smoke:
                best = max(construction_speedup, batch_speedup)
                if best < args.min_smoke_speedup:
                    failures.append(
                        f"parallel arm only {best:.2f}x the serial arm "
                        f"(smoke gate: {args.min_smoke_speedup}x with "
                        f"{effective} effective cores)"
                    )
            else:
                required = args.scaling_factor * effective
                for name, speedup in (("construction", construction_speedup),
                                      ("batch scan", batch_speedup)):
                    if speedup < required:
                        failures.append(
                            f"{name} speedup {speedup:.2f}x below "
                            f"{args.scaling_factor} x {effective} effective "
                            f"cores = {required:.2f}x"
                        )
        else:
            print(f"  scaling gates skipped: {cpu_count} core(s) available")

        pruning = run_pruning_arm(
            data, np.random.default_rng(args.seed + 3),
            shards=args.shards, n_queries=24, constants=constants,
        )
        print(f"  pruning: {pruning['pruned_fraction_range']:.0%} of shards "
              f"pruned on range layout ({pruning['pruned_fraction_hash']:.0%} "
              f"on hash), {pruning['pruning_speedup']:.2f}x faster than the "
              f"unprunable hash layout")
        if pruning["pruned_fraction_range"] < args.min_pruned:
            failures.append(
                f"clustered workload pruned only "
                f"{pruning['pruned_fraction_range']:.0%} of shards "
                f"(required: {args.min_pruned:.0%})"
            )
        if not args.smoke and pruning["pruning_speedup"] < args.min_pruning_speedup:
            failures.append(
                f"range layout only {pruning['pruning_speedup']:.2f}x the "
                f"hash layout on clustered predicates "
                f"(required: {args.min_pruning_speedup}x)"
            )

        latency = run_latency_arm(
            data, np.random.default_rng(args.seed + 4),
            shards=args.shards, n_queries=args.n_latency, constants=constants,
        )
        tau = latency["tau_seconds"]
        print(f"  pooled tau = {tau * 1e3:.3f} ms: p50 "
              f"{latency['latency_p50'] * 1e3:.3f} ms, p99 "
              f"{latency['latency_p99'] * 1e3:.3f} ms")
        if not args.smoke and latency["latency_p99"] > args.latency_factor * tau:
            failures.append(
                f"p99 latency {latency['latency_p99'] * 1e3:.3f} ms exceeds "
                f"{args.latency_factor} x the pooled interactivity budget "
                f"tau = {tau * 1e3:.3f} ms"
            )
    except AssertionError as error:
        failures.append(str(error))
        print(f"  FAILED: {error}")

    payload = {
        "benchmark": "scale",
        "run": run_metadata(args.rows, workers=workers, shards=args.shards),
        "effective_parallelism": effective,
        "scaling_factor": args.scaling_factor,
        "calibrated": not args.simulated_constants,
        "arms": arms,
        "pass": not failures,
        "failures": failures,
    }
    payload["construction_speedup"] = construction_speedup
    payload["batch_speedup"] = batch_speedup
    payload["scaling_gates_enforced"] = gates_enforced
    payload["pruning"] = pruning
    payload["latency"] = latency

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {output}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS: answers exact across all arms; shard pruning "
          f">= {args.min_pruned:.0%} on clustered predicates"
          + ("" if effective < 2 else "; parallel scaling within gates"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
