"""Figure 9: cost-model validation with the adaptive indexing budget.

Runs the SkyServer-like workload with the adaptive budget (t_budget = 0.2 x
t_scan) and checks the defining property of Figure 9: the per-query time
stays approximately constant until the index converges, then drops.
"""

import numpy as np

from repro.experiments.cost_model_validation import run_cost_model_validation
from repro.experiments.reporting import render_cost_model_validation


def test_fig9_adaptive_budget_cost_model(benchmark, bench_config):
    result = benchmark.pedantic(
        run_cost_model_validation,
        args=(bench_config,),
        kwargs={"adaptive": True},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_cost_model_validation(result))
    for algorithm in result.algorithms():
        series = result.series[algorithm]
        phases = np.array(series.phases)
        measured = series.measured_seconds
        converged = phases == "converged"
        building = ~converged
        if converged.any() and building.sum() >= 5:
            # Queries after convergence are (much) cheaper than the paced
            # queries issued while the index was still being built.
            assert np.median(measured[converged]) < np.median(measured[building])
            benchmark.extra_info[f"{algorithm}_speedup_after_convergence"] = round(
                float(np.median(measured[building]) / max(np.median(measured[converged]), 1e-9)),
                1,
            )
        benchmark.extra_info[f"{algorithm}_converged"] = bool(converged.any())
