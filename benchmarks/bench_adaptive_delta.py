"""Adaptive-delta benchmark: cost-model-greedy policy vs. a fixed delta.

Section 3 of the paper argues that the per-algorithm cost models enable
*adaptive* progressive indexing: instead of indexing a fixed fraction delta
of the column per query, solve the cost model for the delta that lands every
query on an interactivity threshold τ.  This benchmark measures exactly that
trade-off on a uniform workload:

* **fixed** — the fixed delta of the paper's Figure 8 validation
  (``delta = 0.25`` by default, the repository's ``FIXED_DELTA``): every
  query performs a quarter of the remaining phase work regardless of what
  the query itself costs, so the per-query time swings with the phase and
  the predicate.
* **greedy** — :class:`~repro.core.policy.CostModelGreedy` with
  ``τ = (1 + f) * t_scan``: every query performs however much indexing
  keeps its *predicted total* at τ, with the wall clock feeding the
  symmetric measured/predicted correction — back off when predictions
  miss low, reclaim unused slack when they miss high — so the measured
  per-query time tracks τ from both sides until convergence (the paper's
  Figure 9 shape).

Reported per algorithm: the **pre-convergence per-query time variance**
(the paper's Figure 9 claim is that every query lands on τ *until the index
converges*; a fixed window would perversely punish the policy that
converges earlier, because the cheap post-convergence queries form a step),
the paper's first-100-queries robustness for reference, the convergence
query, and the cumulative time to convergence.  The benchmark asserts the
tentpole property — greedy pre-convergence variance below fixed with total
convergence time within ``--max-slowdown`` (default 1.2x) — and writes
everything to ``BENCH_adaptive.json``.

The cost model is calibrated on the machine first (``calibrate()``) so the
model-space τ tracks wall-clock reality.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive_delta.py
    PYTHONPATH=src python benchmarks/bench_adaptive_delta.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata
from repro.core.calibration import calibrate, simulated_constants
from repro.core.policy import CostModelGreedy, FixedDelta
from repro.engine.metrics import robustness
from repro.engine.registry import PROGRESSIVE_ALGORITHMS, create_index
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data
from repro.workloads.patterns import generate_pattern

DEFAULT_ALGORITHMS = list(PROGRESSIVE_ALGORITHMS)

#: Safety cap on the per-run query loop.
MAX_QUERIES = 2_000


def run_policy(name: str, data: np.ndarray, policy, workload, constants, window: int) -> dict:
    """Drive one index through ``workload`` and summarise the timings."""
    index = create_index(name, Column(data, name="value"), budget=policy, constants=constants)
    times = []
    convergence_query = None
    for query_number, predicate in enumerate(workload, start=1):
        started = time.perf_counter()
        index.query(predicate)
        times.append(time.perf_counter() - started)
        if convergence_query is None and index.converged:
            convergence_query = query_number
        if query_number >= MAX_QUERIES:
            break
    times = np.asarray(times)
    convergence_seconds = (
        float(times[:convergence_query].sum()) if convergence_query else None
    )
    pre_convergence = times[:convergence_query] if convergence_query else times
    return {
        "variance": float(np.var(pre_convergence)),
        "robustness_window_variance": robustness(times, window=window),
        "convergence_query": convergence_query,
        "convergence_seconds": convergence_seconds,
        "cumulative_seconds": float(times.sum()),
        "first_query_seconds": float(times[0]),
        "queries": int(times.size),
    }


def compare_algorithm(
    name: str,
    data: np.ndarray,
    workload,
    constants,
    scan_fraction: float,
    fixed_delta: float,
    window: int,
    repeats: int = 3,
) -> dict:
    """Fixed-delta vs greedy comparison for one algorithm.

    Each arm runs ``repeats`` times; every reported metric is the best
    (minimum) observed across the repeats, the usual noise suppression for
    wall-clock measurements — a single scheduler hiccup or page-fault storm
    otherwise dominates the variance estimate of a short run.
    """
    def best_of(runs: list) -> dict:
        best = dict(min(runs, key=lambda r: r["variance"]))
        converged = [r["convergence_seconds"] for r in runs if r["convergence_seconds"]]
        if converged:
            best["convergence_seconds"] = min(converged)
        return best

    fixed_runs = []
    for _ in range(repeats):
        run = run_policy(name, data, FixedDelta(fixed_delta), workload, constants, window)
        run["delta"] = fixed_delta
        fixed_runs.append(run)
    fixed = best_of(fixed_runs)

    greedy_runs = []
    for _ in range(repeats):
        # The wall clock feeds the symmetric measured/predicted correction,
        # so the greedy policy cancels residual calibration error per phase
        # in both directions (back off on overshoot, reclaim on undershoot).
        # The gentle EMA targets the static calibration residual rather
        # than chasing per-query jitter (delta oscillation is itself
        # variance).
        greedy_policy = CostModelGreedy(
            scan_fraction=scan_fraction,
            correction_range=(0.25, 4.0),
            smoothing=0.2,
            clock=time.perf_counter,
        )
        run = run_policy(name, data, greedy_policy, workload, constants, window)
        run["tau_seconds"] = greedy_policy.interactivity_budget
        greedy_runs.append(run)
    greedy = best_of(greedy_runs)

    variance_ratio = (
        greedy["variance"] / fixed["variance"] if fixed["variance"] > 0 else None
    )
    convergence_ratio = None
    if fixed["convergence_seconds"] and greedy["convergence_seconds"]:
        convergence_ratio = greedy["convergence_seconds"] / fixed["convergence_seconds"]
    return {
        "fixed": fixed,
        "greedy": greedy,
        "variance_ratio": variance_ratio,
        "convergence_ratio": convergence_ratio,
    }


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-elements", type=int, default=1_000_000,
                        help="column size (default: 1_000_000)")
    parser.add_argument("--n-queries", type=int, default=500,
                        help="workload length (default: 500)")
    parser.add_argument("--algorithms", nargs="+", default=DEFAULT_ALGORITHMS,
                        help=f"algorithms to benchmark (default: {DEFAULT_ALGORITHMS})")
    parser.add_argument("--scan-fraction", type=float, default=0.2,
                        help="greedy interactivity budget as a fraction of the "
                             "scan cost; tau = (1 + fraction) * t_scan "
                             "(default: 0.2)")
    parser.add_argument("--fixed-delta", type=float, default=0.25,
                        help="delta of the fixed arm (default: 0.25, the "
                             "Figure 8 validation delta)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--window", type=int, default=100,
                        help="robustness window (default: 100 queries)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per (algorithm, policy) arm; the "
                             "lowest-variance run is kept (default: 5)")
    parser.add_argument("--max-slowdown", type=float, default=1.2,
                        help="maximum allowed greedy/fixed time-to-convergence "
                             "ratio (default: 1.2)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: same workload (the full run only "
                             "takes seconds), but gates on crash + variance "
                             "only and does not write BENCH_adaptive.json")
    parser.add_argument("--simulated-constants", action="store_true",
                        help="skip calibration and use the deterministic "
                             "simulated constants (the wall-clock gates are "
                             "only meaningful with calibration)")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: BENCH_adaptive.json "
                             "next to the repository root; omitted in --smoke "
                             "runs unless given explicitly)")
    args = parser.parse_args(argv)
    # Smoke runs keep the full column size: smaller columns sit in cache,
    # where the working-set-scale calibration stops being representative
    # and the variance gate turns flappy.
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    data = uniform_data(args.n_elements, rng=rng)
    workload = generate_pattern(
        "Random", int(data.min()), int(data.max()), args.n_queries, rng=rng
    )
    # Calibrated constants make the model-space tau track wall-clock time
    # (calibration measures the engine's own primitives and costs well under
    # a second, so smoke runs calibrate too).
    constants = simulated_constants() if args.simulated_constants else calibrate()

    print(f"adaptive delta: {args.n_elements} uniform elements, "
          f"{args.n_queries} random range queries, "
          f"scan_fraction={args.scan_fraction}")
    header = (f"{'algo':>6} {'policy':>7} {'pre-conv var':>14} {'conv q':>7} "
              f"{'conv (s)':>9} {'total (s)':>10}")
    print(header)
    print("-" * len(header))

    results = {}
    failures = []
    for name in args.algorithms:
        comparison = compare_algorithm(
            name, data, workload, constants, args.scan_fraction,
            args.fixed_delta, args.window, repeats=args.repeats,
        )
        results[name] = comparison
        for mode in ("fixed", "greedy"):
            run = comparison[mode]
            print(f"{name:>6} {mode:>7} {run['variance']:>14.3e} "
                  f"{str(run['convergence_query']):>7} "
                  f"{run['convergence_seconds'] or float('nan'):>9.4f} "
                  f"{run['cumulative_seconds']:>10.4f}")
        ratio = comparison["variance_ratio"]
        conv_ratio = comparison["convergence_ratio"]
        print(f"{name:>6} {'ratio':>7} variance {ratio if ratio is not None else 'n/a':>10} "
              f" convergence {conv_ratio if conv_ratio is not None else 'n/a'}")
        if ratio is not None and ratio > 1.0:
            failures.append(f"{name}: greedy variance {ratio:.2f}x the fixed variance")
        # The CI smoke gate is crash + variance; the convergence-time ratio
        # sits close enough to the limit that scheduler noise on shared CI
        # runners would make it flappy, so only full runs enforce it.
        if not args.smoke and conv_ratio is not None and conv_ratio > args.max_slowdown:
            failures.append(
                f"{name}: greedy convergence {conv_ratio:.2f}x slower than fixed "
                f"(limit {args.max_slowdown}x)"
            )
        if comparison["greedy"]["convergence_query"] is None:
            failures.append(f"{name}: greedy run did not converge")

    payload = {
        "benchmark": "adaptive_delta",
        "run": run_metadata(args.n_elements),
        "n_elements": args.n_elements,
        "n_queries": args.n_queries,
        "scan_fraction": args.scan_fraction,
        "fixed_delta": args.fixed_delta,
        "robustness_window": args.window,
        "max_slowdown": args.max_slowdown,
        "calibrated": not args.simulated_constants,
        "results": results,
        "pass": not failures,
        "failures": failures,
    }
    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {output}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS: greedy variance below fixed variance, convergence within "
          f"{args.max_slowdown}x for all algorithms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
