"""Shared configuration and cached experiment runs for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The synthetic
grid feeds three tables (Tables 3, 4 and 5), so it is executed once per
pytest session and cached here; all other experiments are timed directly by
their benchmark.

The scale can be adjusted from the command line::

    pytest benchmarks/ --benchmark-only --bench-elements 1000000 --bench-queries 300
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.synthetic_comparison import run_synthetic_comparison


def pytest_addoption(parser):
    group = parser.getgroup("progressive-indexes benchmarks")
    group.addoption(
        "--bench-elements", type=int, default=300_000,
        help="column size used by the benchmark experiments",
    )
    group.addoption(
        "--bench-large-elements", type=int, default=1_000_000,
        help="column size of the large (paper: 10^9) experiment block",
    )
    group.addoption(
        "--bench-queries", type=int, default=150,
        help="number of queries per workload",
    )


@pytest.fixture(scope="session")
def bench_config(request) -> ExperimentConfig:
    return ExperimentConfig(
        n_elements=request.config.getoption("--bench-elements"),
        n_elements_large=request.config.getoption("--bench-large-elements"),
        n_queries=request.config.getoption("--bench-queries"),
        calibrate_constants=True,
    )


@pytest.fixture(scope="session")
def synthetic_comparison(bench_config):
    """Tables 3-5 source data (the grid is executed once per session)."""
    return run_synthetic_comparison(bench_config)
