"""Shared configuration and cached experiment runs for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The synthetic
grid feeds three tables (Tables 3, 4 and 5), so it is executed once per
pytest session and cached here; all other experiments are timed directly by
their benchmark.

The scale can be adjusted from the command line::

    pytest benchmarks/ --benchmark-only --bench-elements 1000000 --bench-queries 300
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.synthetic_comparison import run_synthetic_comparison


def pytest_addoption(parser):
    group = parser.getgroup("progressive-indexes benchmarks")
    group.addoption(
        "--bench-elements", type=int, default=300_000,
        help="column size used by the benchmark experiments",
    )
    group.addoption(
        "--bench-large-elements", type=int, default=1_000_000,
        help="column size of the large (paper: 10^9) experiment block",
    )
    group.addoption(
        "--bench-queries", type=int, default=150,
        help="number of queries per workload",
    )
    group.addoption(
        "--rows", type=int, default=None,
        help="override the column size of every benchmark (alias of "
             "--bench-elements that also scales the large block)",
    )
    group.addoption(
        "--workers", type=int, default=None,
        help="worker processes used by sharded/parallel benchmarks "
             "(default: cpu count)",
    )


@pytest.fixture(scope="session")
def bench_rows(request) -> int:
    rows = request.config.getoption("--rows")
    return rows if rows is not None else request.config.getoption("--bench-elements")


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    workers = request.config.getoption("--workers")
    if workers is not None:
        return workers
    import os

    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def bench_config(request, bench_rows) -> ExperimentConfig:
    rows_override = request.config.getoption("--rows")
    large = (
        rows_override if rows_override is not None
        else request.config.getoption("--bench-large-elements")
    )
    return ExperimentConfig(
        n_elements=bench_rows,
        n_elements_large=large,
        n_queries=request.config.getoption("--bench-queries"),
        calibrate_constants=True,
    )


@pytest.fixture(scope="session")
def synthetic_comparison(bench_config):
    """Tables 3-5 source data (the grid is executed once per session)."""
    return run_synthetic_comparison(bench_config)
