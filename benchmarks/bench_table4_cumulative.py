"""Table 4: cumulative workload time on the synthetic grid."""

from repro.experiments.reporting import render_synthetic_table


def test_table4_cumulative_time(benchmark, synthetic_comparison):
    result = synthetic_comparison

    def derive():
        return {
            block: result.winners("cumulative_seconds", block) for block in result.blocks()
        }

    winners = benchmark.pedantic(derive, rounds=1, iterations=1)
    print("\n" + render_synthetic_table(result, "cumulative_seconds", "Table 4: cumulative time (s)"))

    # Paper: for point queries the LSD intermediate index is usable from the
    # start, so PLSD stays much closer to the winner on point workloads than
    # on range workloads.  At scaled-down sizes the constant per-query
    # overhead shifts the absolute ratios (see EXPERIMENTS.md), so the ratios
    # are recorded rather than asserted; the relative claim (point gap <
    # range gap) is asserted below.
    point_table = result.table("cumulative_seconds", "point")
    point_ratios = [
        values["PLSD"] / min(values.values())
        for values in point_table.values()
        if "PLSD" in values
    ]
    range_table = result.table("cumulative_seconds", "uniform")
    range_ratios = [
        values["PLSD"] / min(values.values())
        for values in range_table.values()
        if "PLSD" in values
    ]
    if point_ratios and range_ratios:
        assert sum(point_ratios) / len(point_ratios) <= sum(range_ratios) / len(range_ratios)
        benchmark.extra_info["plsd_point_gap"] = round(sum(point_ratios) / len(point_ratios), 2)
        benchmark.extra_info["plsd_range_gap"] = round(sum(range_ratios) / len(range_ratios), 2)

    # Paper: for range queries PLSD is the weakest progressive method because
    # its buckets cannot prune range predicates before convergence.
    uniform = result.table("cumulative_seconds", "uniform")
    for pattern, values in uniform.items():
        others = [values[name] for name in ("PQ", "PB", "PMSD") if name in values]
        if "PLSD" in values and others:
            assert values["PLSD"] >= min(others), pattern

    benchmark.extra_info["winners"] = winners
