"""Table 3: first-query cost on the synthetic workload grid."""

from repro.experiments.reporting import render_synthetic_table


def test_table3_first_query_cost(benchmark, synthetic_comparison):
    result = synthetic_comparison

    def derive():
        return {
            block: result.table("first_query_seconds", block) for block in result.blocks()
        }

    tables = benchmark.pedantic(derive, rounds=1, iterations=1)
    print("\n" + render_synthetic_table(result, "first_query_seconds", "Table 3: first query cost (s)"))

    for block, table in tables.items():
        for pattern, values in table.items():
            progressive = [values[name] for name in ("PQ", "PB", "PLSD", "PMSD") if name in values]
            if "AA" not in values or not progressive:
                continue
            # Paper: every progressive index has a (much) cheaper first query
            # than adaptive adaptive indexing, which copies and partitions the
            # whole column up front.
            assert min(progressive) < values["AA"], (block, pattern)

    uniform = tables.get("uniform", {})
    if uniform:
        sample = next(iter(uniform.values()))
        benchmark.extra_info["uniform_first_query_s"] = {
            name: round(value, 5) for name, value in sample.items()
        }
