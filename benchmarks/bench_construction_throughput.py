"""Construction-throughput benchmark: the vectorized kernel layer vs. the
pre-kernel-layer loop implementation.

For every progressive algorithm the benchmark drives a fresh index from its
first query to full convergence under a maximal budget (``FixedBudget(1.0)``
— each query grants a whole phase-step of work), timing the three
construction phases (creation, refinement, consolidation) separately.  Each
algorithm is measured twice:

* **kernel** — the current construction-kernel layer: grouped
  argsort+bincount scatter, bulk block appends, direct block drains,
  kernel-routed whole-node partitions, codec-keyed radix digits;
* **legacy** — the pre-PR loop implementation, restored by monkeypatching
  the masked per-bucket scatter (``BucketSet.scatter_masked``), the
  per-block Python append loop, the slice-then-copy bucket drain and the
  always-streaming scratch partition back in.

The speedup ``legacy_total / kernel_total`` is reported per algorithm and
written to ``BENCH_construction.json``.  The radix/bucket family (PLSD,
PMSD, PB) is the scatter-bound one; ``--min-speedup`` gates on exactly that
family so the check can run in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_construction_throughput.py
    PYTHONPATH=src python benchmarks/bench_construction_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_construction_throughput.py --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata
from repro.core.budget import FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.engine.registry import create_index
from repro.progressive.blocks import BlockList, BucketSet
from repro.progressive.bucketsort import BoundsRouter
from repro.progressive.pivot_tree import NodeState
from repro.progressive.sorter import ProgressiveSorter
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data

#: The algorithms whose construction is scatter/merge-bound; the
#: ``--min-speedup`` gate applies to these.
RADIX_BUCKET_FAMILY = ["PLSD", "PMSD", "PB"]

DEFAULT_ALGORITHMS = RADIX_BUCKET_FAMILY + ["PQ"]

#: Safety cap on the convergence loop (a maximal budget converges every
#: algorithm in far fewer queries).
MAX_QUERIES = 500


def _legacy_append_array(self, values: np.ndarray) -> None:
    """The seed's per-block Python append loop (pre-kernel-layer)."""
    values = np.asarray(values, dtype=self.dtype)
    offset = 0
    remaining = values.size
    while remaining > 0:
        if not self._blocks or self._last_fill == self.block_size:
            self._blocks.append(np.empty(self.block_size, dtype=self.dtype))
            self._last_fill = 0
        space = self.block_size - self._last_fill
        take = min(space, remaining)
        block = self._blocks[-1]
        block[self._last_fill : self._last_fill + take] = values[offset : offset + take]
        self._last_fill += take
        offset += take
        remaining -= take
    self._size += values.size


def _legacy_route(self, values):
    """The seed's bucket routing: a plain binary search per element."""
    return np.searchsorted(self.bounds, values, side="right")


def _legacy_drain_into(self, target, target_start, start, count):
    """The seed's bucket drain: materialise a slice, then copy it again."""
    chunk = self.slice_array(start, count)
    target[target_start : target_start + chunk.size] = chunk
    return int(chunk.size)


def _legacy_partition_step(self, node, budget):
    """The seed's node partition: always stream through a scratch buffer
    (no whole-node kernel fast path)."""
    if node.state is NodeState.PENDING:
        node.scratch = np.empty(node.size, dtype=self.array.dtype)
        node.low_fill = 0
        node.high_fill = node.size
        node.scanned = 0
        node.state = NodeState.PARTITIONING
    take = min(budget, node.size - node.scanned)
    if take <= 0:
        return 0
    chunk_start = node.start + node.scanned
    chunk = self.array[chunk_start : chunk_start + take]
    mask = chunk < node.pivot
    lows = chunk[mask]
    highs = chunk[~mask]
    node.scratch[node.low_fill : node.low_fill + lows.size] = lows
    node.low_fill += lows.size
    node.scratch[node.high_fill - highs.size : node.high_fill] = highs
    node.high_fill -= highs.size
    node.scanned += take
    if node.scanned >= node.size:
        self.array[node.start : node.end] = node.scratch
        boundary = node.start + node.low_fill
        node.scratch = None
        self._create_children(node, boundary)
    return take


@contextlib.contextmanager
def legacy_construction_loops():
    """Swap the construction kernels for the pre-PR loop implementations."""
    patches = [
        (BucketSet, "scatter", BucketSet.scatter_masked),
        (BlockList, "append_array", _legacy_append_array),
        (BlockList, "drain_into", _legacy_drain_into),
        (ProgressiveSorter, "_partition_step", _legacy_partition_step),
        (BoundsRouter, "route", _legacy_route),
    ]
    originals = [(owner, name, getattr(owner, name)) for owner, name, _ in patches]
    for owner, name, replacement in patches:
        setattr(owner, name, replacement)
    try:
        yield
    finally:
        for owner, name, original in originals:
            setattr(owner, name, original)


def drive_to_convergence(name: str, data: np.ndarray) -> dict:
    """Construct ``name`` over ``data`` to convergence; time each phase."""
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(1.0))
    low = float(data.min())
    predicate = Predicate(low, low)  # point query: minimal answering overhead
    phase_seconds = {phase: 0.0 for phase in ("creation", "refinement", "consolidation")}
    queries = 0
    while not index.converged and queries < MAX_QUERIES:
        phase_before = index.phase
        started = time.perf_counter()
        index.query(predicate)
        elapsed = time.perf_counter() - started
        queries += 1
        if phase_before in (IndexPhase.INACTIVE, IndexPhase.CREATION):
            phase_seconds["creation"] += elapsed
        elif phase_before is IndexPhase.REFINEMENT:
            phase_seconds["refinement"] += elapsed
        else:
            phase_seconds["consolidation"] += elapsed
    if not index.converged:
        raise RuntimeError(f"{name} failed to converge within {MAX_QUERIES} queries")
    total = sum(phase_seconds.values())
    return {
        "creation_s": round(phase_seconds["creation"], 6),
        "refinement_s": round(phase_seconds["refinement"], 6),
        "consolidation_s": round(phase_seconds["consolidation"], 6),
        "total_s": round(total, 6),
        "queries_to_converge": queries,
    }


def best_of(repeats: int, name: str, data: np.ndarray) -> dict:
    """Best (fastest total) of ``repeats`` construction runs."""
    runs = [drive_to_convergence(name, data) for _ in range(repeats)]
    return min(runs, key=lambda timing: timing["total_s"])


def verify_construction(name: str, data: np.ndarray) -> None:
    """Cross-check a freshly constructed index against a predicated scan."""
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(1.0))
    low = float(np.percentile(data, 40))
    high = float(np.percentile(data, 60))
    queries = 0
    while not index.converged and queries < MAX_QUERIES:
        index.query(Predicate(low, high))
        queries += 1
    result = index.query(Predicate(low, high))
    mask = (data >= low) & (data <= high)
    if result.count != int(mask.sum()):
        raise AssertionError(
            f"{name}: converged count {result.count} != scan count {int(mask.sum())}"
        )


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-elements", type=int, default=1_000_000,
                        help="column size (default: 1_000_000)")
    parser.add_argument("--algorithms", nargs="+", default=DEFAULT_ALGORITHMS,
                        help=f"algorithms to benchmark (default: {DEFAULT_ALGORITHMS})")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--repeats", type=int, default=3,
                        help="construction runs per mode; the fastest is kept")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when a radix/bucket-family algorithm "
                             "falls below this kernel-vs-legacy speedup")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: BENCH_construction.json "
                             "next to the repository root; omitted in --smoke runs "
                             "unless given explicitly)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_elements = min(args.n_elements, 50_000)
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    data = uniform_data(args.n_elements, rng=rng)

    print(f"construction throughput: {args.n_elements} uniform elements, "
          f"maximal budget (delta = 1.0)")
    header = (f"{'algo':>6} {'mode':>7} {'creation':>10} {'refinement':>11} "
              f"{'consolid.':>10} {'total':>10} {'queries':>8} {'speedup':>8}")
    print(header)
    print("-" * len(header))

    results = {}
    failures = []
    for name in args.algorithms:
        verify_construction(name, data)
        kernel = best_of(args.repeats, name, data)
        with legacy_construction_loops():
            legacy = best_of(args.repeats, name, data)
        speedup = legacy["total_s"] / kernel["total_s"] if kernel["total_s"] > 0 else float("inf")
        results[name] = {"kernel": kernel, "legacy": legacy, "speedup": round(speedup, 3)}
        for mode, timing in (("kernel", kernel), ("legacy", legacy)):
            shown = f"{speedup:>7.2f}x" if mode == "kernel" else f"{'':>8}"
            print(f"{name:>6} {mode:>7} {timing['creation_s']:>9.4f}s "
                  f"{timing['refinement_s']:>10.4f}s {timing['consolidation_s']:>9.4f}s "
                  f"{timing['total_s']:>9.4f}s {timing['queries_to_converge']:>8} {shown}")
        if (args.min_speedup is not None
                and name in RADIX_BUCKET_FAMILY
                and speedup < args.min_speedup):
            failures.append((name, speedup))

    family = [name for name in args.algorithms if name in RADIX_BUCKET_FAMILY]
    family_min = min((results[name]["speedup"] for name in family), default=None)
    report = {
        "benchmark": "construction_throughput",
        "run": run_metadata(args.n_elements),
        "config": {
            "n_elements": args.n_elements,
            "seed": args.seed,
            "smoke": args.smoke,
            "repeats": args.repeats,
            "budget": "FixedBudget(1.0)",
            "baseline": "pre-kernel-layer loops: masked per-bucket scatter, "
                        "per-block Python append, slice-then-copy drain, "
                        "scratch-streaming node partition",
        },
        "radix_bucket_family": family,
        "min_family_speedup": family_min,
        "regression": bool(failures),
        "results": results,
    }

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent.parent / "BENCH_construction.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for name, speedup in failures:
            print(f"FAIL: {name} construction speedup {speedup:.2f}x below required "
                  f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
