"""Figure 5: shape of the SkyServer-like data set and query log.

Benchmarks the workload generator itself and records the two shape statistics
the experiment relies on: the skew of the value distribution (Figure 5a) and
the spatial clustering of the query log (Figure 5b).
"""

from repro.experiments.workload_figures import figure5_summary


def test_fig5_skyserver_inputs(benchmark, bench_config):
    summary = benchmark.pedantic(
        figure5_summary, args=(bench_config,), rounds=1, iterations=1
    )
    # Figure 5a: the right-ascension distribution is strongly non-uniform.
    assert summary.distribution_skew() > 1.5
    # Figure 5b: consecutive queries stay spatially close (drifting focus).
    assert summary.workload_drift() < 0.2
    benchmark.extra_info["distribution_skew"] = round(summary.distribution_skew(), 2)
    benchmark.extra_info["workload_drift"] = round(summary.workload_drift(), 4)
    benchmark.extra_info["n_queries"] = summary.n_queries
