"""Figure 10: per-query time series of PQ vs. the best cracking comparators."""

import numpy as np

from repro.experiments.skyserver_comparison import run_figure10
from repro.experiments.reporting import render_figure10


def test_fig10_per_query_series(benchmark, bench_config):
    executions = benchmark.pedantic(
        run_figure10, args=(bench_config,), rounds=1, iterations=1
    )
    print("\n" + render_figure10(executions, head=15))

    progressive = executions["PQ"]
    for cracking_name in ("AA", "PSTC"):
        cracking = executions[cracking_name]
        # The cracking comparators start with a (much) more expensive first
        # query than the budget-paced progressive index.
        assert cracking.records[0].elapsed_seconds > progressive.records[0].elapsed_seconds

    # Progressive Quicksort converges during the workload and its per-query
    # cost drops to index-lookup level afterwards.
    converged_at = progressive.metrics().convergence_query
    assert converged_at is not None
    times = progressive.times()
    if converged_at < len(times) - 10:
        assert np.median(times[converged_at:]) < np.median(times[:converged_at])

    benchmark.extra_info["pq_converged_at"] = converged_at
    benchmark.extra_info["first_query_seconds"] = {
        name: round(execution.records[0].elapsed_seconds, 5)
        for name, execution in executions.items()
    }
