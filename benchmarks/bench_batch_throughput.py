"""Throughput benchmark: batch execution vs. a sequential per-query loop.

Runs the same uniform random range workload twice against freshly created
indexes — once through a plain Python loop over ``index.query`` and once
through the :class:`~repro.engine.batch.BatchExecutor` — verifies that both
executions produced identical answers, and reports the throughput of each
together with the speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --min-speedup 2.0

The default configuration (1_000 queries over 300_000 elements) is the
reference workload: the default algorithm selection — one representative per
family — demonstrates well over 2x throughput.  ``--smoke`` shrinks the
configuration for CI.  With ``--min-speedup`` the process exits non-zero
when any algorithm falls short, so the check can gate a pipeline.

All eleven algorithms can be benchmarked via ``--algorithms``.  The
bucket-based variants (PLSD, PMSD, PB, CGI) show smaller gains (~1.5x):
their cost is dominated by the radix/bucket construction passes, which both
execution modes pay identically — batching only removes the per-query
dispatch and answering overhead around them.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from bench_common import timed_stage
from repro.core.query import Predicate
from repro.engine.batch import BatchExecutor
from repro.engine.metrics import BatchMetrics
from repro.engine.registry import create_index
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data
from repro.workloads.patterns import random_workload

DEFAULT_ALGORITHMS = ["PQ", "STD", "AA", "FS", "FI"]


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-elements", type=int, default=300_000,
                        help="column size (default: 300_000)")
    parser.add_argument("--n-queries", type=int, default=1_000,
                        help="workload length (default: 1_000)")
    parser.add_argument("--selectivity", type=float, default=0.01,
                        help="per-query selectivity (default: 0.01)")
    parser.add_argument("--algorithms", nargs="+", default=DEFAULT_ALGORITHMS,
                        help=f"algorithms to benchmark (default: {DEFAULT_ALGORITHMS})")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when any algorithm is below this speedup")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_elements = min(args.n_elements, 20_000)
        args.n_queries = min(args.n_queries, 100)
    return args


def run_one(name: str, data: np.ndarray, predicates: list) -> BatchMetrics:
    """Time a sequential loop and a batch execution of the same workload."""
    sequential_index = create_index(name, Column(data, name="value"))
    with timed_stage("sequential_loop", algorithm=name) as sequential_timer:
        sequential_results = [sequential_index.query(p) for p in predicates]
    sequential_seconds = sequential_timer.seconds

    batch_index = create_index(name, Column(data, name="value"))
    batch = BatchExecutor().execute(batch_index, predicates)

    for query_number, (expected, got) in enumerate(zip(sequential_results, batch.results)):
        if expected.count != got.count or not expected.approximately_equals(got):
            raise AssertionError(
                f"{name}: batch answer diverged from sequential at query "
                f"{query_number}: {got} != {expected}"
            )
    return BatchMetrics(
        n_queries=len(predicates),
        sequential_seconds=sequential_seconds,
        batch_seconds=batch.elapsed_seconds,
        driven_queries=batch.driven_queries,
        vectorized_queries=batch.vectorized_queries,
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    data = uniform_data(args.n_elements, rng=rng)
    workload = random_workload(
        0, args.n_elements, args.n_queries, selectivity=args.selectivity, rng=rng
    )
    predicates = [Predicate(p.low, p.high) for p in workload]

    print(f"batch throughput: {args.n_queries} queries over {args.n_elements} "
          f"uniform elements (selectivity {args.selectivity})")
    header = (f"{'algo':>6} {'sequential':>12} {'batch':>12} {'seq q/s':>10} "
              f"{'batch q/s':>11} {'speedup':>8} {'driven':>7} {'vector':>7}")
    print(header)
    print("-" * len(header))
    failures = []
    for name in args.algorithms:
        metrics = run_one(name, data, predicates)
        print(f"{name:>6} {metrics.sequential_seconds:>11.4f}s "
              f"{metrics.batch_seconds:>11.4f}s "
              f"{metrics.sequential_throughput:>10.0f} {metrics.batch_throughput:>11.0f} "
              f"{metrics.speedup:>7.1f}x {metrics.driven_queries:>7} "
              f"{metrics.vectorized_queries:>7}")
        if args.min_speedup is not None and metrics.speedup < args.min_speedup:
            failures.append((name, metrics.speedup))
    if failures:
        for name, speedup in failures:
            print(f"FAIL: {name} speedup {speedup:.2f}x below required "
                  f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
