"""Update throughput: delta-store writes vs. a rebuild-per-write baseline.

The mutable column substrate extends the paper's pay-as-you-go principle
from construction to *maintenance*: writes land in an append-only delta
store, every query answers over base ∪ delta, and converged indexes merge
the delta in progressively under the same interactivity budget τ that paced
construction (the ``MERGE`` life-cycle stage).  This benchmark measures what
that buys on a mixed read/write stream:

* **delta** — one progressive index (default PQ) under
  :class:`~repro.core.policy.CostModelGreedy`, driven to convergence, then
  fed a ``MixedReadWrite`` stream.  Writes are O(1) appends; queries pay a
  small overlay correction plus budget-priced merge work.
* **rebuild** — the same engine without a delta store: after *every* write
  burst the index is dropped, the data re-snapshotted and construction
  re-run to convergence (``delta = 1``).  Reads go through the identical
  ``index.query`` machinery, so the comparison isolates the maintenance
  strategy rather than dispatch overhead.

Reported per write ratio (0%, 1%, 10% by default): queries/sec of both
arms, the delta/rebuild speedup, and the delta arm's per-read latency
distribution against the interactivity budget τ.  The full run asserts the
tentpole property — delta sustains at least ``--min-speedup`` (default 5x)
the rebuild throughput at a 1% write ratio — plus the latency bound (median
read latency within ``--latency-factor`` of τ), and writes everything to
``BENCH_updates.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_update_throughput.py
    PYTHONPATH=src python benchmarks/bench_update_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata
from repro.core.calibration import calibrate, simulated_constants
from repro.core.policy import CostModelGreedy
from repro.core.query import Predicate
from repro.engine.registry import create_index
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data
from repro.workloads.patterns import mixed_read_write_workload
from repro.workloads.workload import WriteOp

#: Safety cap on the convergence warmup.
MAX_WARMUP_QUERIES = 5_000


class RebuildPerWrite:
    """The same engine without a delta store: drop + recreate per write.

    The honest alternative a user of this library had before the mutable
    substrate: after every write burst, throw the index away, re-snapshot
    the data and re-run construction to convergence (all remaining phase
    work at once, ``delta = 1``).  Reads go through exactly the same
    ``index.query`` machinery as the delta arm, so the comparison isolates
    the maintenance strategy rather than engine dispatch overhead.
    """

    def __init__(self, data: np.ndarray, method: str, constants) -> None:
        self._column = Column(data, name="value")
        self._method = method
        self._constants = constants
        self._rebuild()

    def _rebuild(self) -> None:
        from repro.core.policy import FixedDelta
        from repro.storage.column import ColumnSnapshot

        snapshot = self._column.snapshot()
        frozen = ColumnSnapshot(snapshot.data, "value", 0, None)
        self._index = create_index(
            self._method, frozen, budget=FixedDelta(1.0), constants=self._constants
        )
        domain = float(snapshot.min()), float(snapshot.max())
        probe = Predicate(domain[0], domain[0])
        for _ in range(16):
            self._index.query(probe)
            if self._index.converged:
                break

    def read(self, predicate: Predicate):
        return self._index.query(predicate)

    def write(self, op: WriteOp) -> None:
        if op.kind == "insert":
            self._column.insert(list(op.values))
        elif op.kind == "delete":
            self._column.delete_where(op.low, op.high)
        else:
            self._column.update_where(op.low, op.high, op.value)
        self._rebuild()


def converge(index, domain_low, domain_high, rng) -> int:
    """Drive ``index`` to convergence with random reads; returns the query count."""
    for query_number in range(1, MAX_WARMUP_QUERIES + 1):
        low = float(rng.uniform(domain_low, domain_high * 0.9))
        index.query(Predicate(low, low + 0.05 * (domain_high - domain_low)))
        if index.converged:
            return query_number
    return MAX_WARMUP_QUERIES


def run_delta_arm(data, workload, method, scan_fraction, constants, rng) -> dict:
    """Replay the operation stream against a delta-store-backed index."""
    column = Column(data, name="value")
    policy = CostModelGreedy(scan_fraction=scan_fraction, clock=time.perf_counter)
    index = create_index(method, column, budget=policy, constants=constants)
    warmup = converge(index, float(data.min()), float(data.max()), rng)
    read_latencies = []
    started = time.perf_counter()
    for op in workload.operations:
        if isinstance(op, WriteOp):
            if op.kind == "insert":
                column.insert(list(op.values))
            elif op.kind == "delete":
                column.delete_where(op.low, op.high)
            else:
                column.update_where(op.low, op.high, op.value)
        else:
            t0 = time.perf_counter()
            index.query(op)
            read_latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    latencies = np.asarray(read_latencies)
    return {
        "warmup_queries": warmup,
        "elapsed_seconds": elapsed,
        "reads": int(latencies.size),
        "queries_per_second": latencies.size / elapsed if elapsed > 0 else float("inf"),
        "tau_seconds": policy.interactivity_budget,
        "read_latency_p50": float(np.percentile(latencies, 50)),
        "read_latency_p95": float(np.percentile(latencies, 95)),
        "read_latency_max": float(latencies.max()),
        "final_phase": index.phase.value,
        "overlay": index.overlay_stats(),
    }


def run_rebuild_arm(data, workload, method, constants) -> dict:
    """Replay the same stream against the rebuild-per-write baseline."""
    baseline = RebuildPerWrite(data, method, constants)
    reads = 0
    started = time.perf_counter()
    for op in workload.operations:
        if isinstance(op, WriteOp):
            baseline.write(op)
        else:
            baseline.read(op)
            reads += 1
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "reads": reads,
        "queries_per_second": reads / elapsed if elapsed > 0 else float("inf"),
    }


def verify_equivalence(data, workload, method, constants) -> None:
    """Cross-check delta-arm answers against a mutable-column reference."""
    column = Column(data, name="value")
    reference = Column(data.copy(), name="reference")
    index = create_index(method, column, budget=CostModelGreedy(scan_fraction=0.2),
                         constants=constants)
    for op in workload.operations:
        if isinstance(op, WriteOp):
            for target in (column, reference):
                if op.kind == "insert":
                    target.insert(list(op.values))
                elif op.kind == "delete":
                    target.delete_where(op.low, op.high)
                else:
                    target.update_where(op.low, op.high, op.value)
        else:
            got = index.query(op)
            want_sum, want_count = reference.scan_range(op.low, op.high)
            if got.count != want_count or got.value_sum != want_sum:
                raise AssertionError(
                    f"delta arm diverged from the mutable-column reference at "
                    f"{op}: got (sum={got.value_sum}, count={got.count}), "
                    f"want (sum={want_sum}, count={want_count})"
                )


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-elements", type=int, default=1_000_000,
                        help="column size (default: 1_000_000)")
    parser.add_argument("--n-reads", type=int, default=1_000,
                        help="reads per write-ratio stream (default: 1000)")
    parser.add_argument("--write-ratios", type=float, nargs="+",
                        default=[0.0, 0.01, 0.10],
                        help="write ratios to measure (default: 0 0.01 0.10)")
    parser.add_argument("--method", default="PQ",
                        help="progressive algorithm of the delta arm (default: PQ)")
    parser.add_argument("--scan-fraction", type=float, default=0.2,
                        help="interactivity budget: tau = (1 + f) * t_scan "
                             "(default: 0.2)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required delta/rebuild throughput ratio at a 1%% "
                             "write ratio (default: 5.0)")
    parser.add_argument("--latency-factor", type=float, default=3.0,
                        help="allowed median-read-latency / tau ratio "
                             "(default: 3.0)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: 100k rows, reduced stream, gates "
                             "on crash + a relaxed 2x speedup, no JSON output")
    parser.add_argument("--simulated-constants", action="store_true",
                        help="skip calibration (latency gates are only "
                             "meaningful with calibration)")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: BENCH_updates.json "
                             "next to the repository root; omitted in --smoke "
                             "runs unless given explicitly)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_elements = min(args.n_elements, 100_000)
        args.n_reads = min(args.n_reads, 300)
        args.min_speedup = min(args.min_speedup, 2.0)
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    data = uniform_data(args.n_elements, rng=rng)
    domain_low, domain_high = float(data.min()), float(data.max())
    constants = simulated_constants() if args.simulated_constants else calibrate()

    print(f"update throughput: {args.n_elements} uniform elements, "
          f"{args.n_reads} reads per stream, method={args.method}, "
          f"tau = (1 + {args.scan_fraction}) * t_scan")
    header = (f"{'ratio':>6} {'delta q/s':>11} {'rebuild q/s':>12} {'speedup':>8} "
              f"{'p50/tau':>8} {'p95 (ms)':>9} {'folds':>6}")
    print(header)
    print("-" * len(header))

    # Correctness first: the 10% stream on a small prefix must match a
    # FullScan-over-mutable-column reference exactly.
    verify_data = data[: min(len(data), 50_000)].copy()
    verify_workload = mixed_read_write_workload(
        domain_low, domain_high, n_queries=60, rng=np.random.default_rng(args.seed + 1),
        write_ratio=0.2,
    )
    verify_equivalence(verify_data, verify_workload, args.method, constants)

    results = {}
    failures = []
    for ratio in args.write_ratios:
        workload = mixed_read_write_workload(
            domain_low, domain_high, n_queries=args.n_reads,
            rng=np.random.default_rng(args.seed + int(ratio * 1000)),
            write_ratio=ratio,
        )
        delta = run_delta_arm(
            data, workload, args.method, args.scan_fraction, constants,
            np.random.default_rng(args.seed),
        )
        rebuild = run_rebuild_arm(data, workload, args.method, constants)
        speedup = (
            delta["queries_per_second"] / rebuild["queries_per_second"]
            if rebuild["queries_per_second"] > 0 else float("inf")
        )
        tau = delta["tau_seconds"]
        p50_ratio = delta["read_latency_p50"] / tau if tau else float("nan")
        results[f"{ratio:.2f}"] = {
            "write_ratio": ratio,
            "n_writes": len(workload.writes),
            "delta": delta,
            "rebuild": rebuild,
            "speedup": speedup,
        }
        print(f"{ratio:>6.2f} {delta['queries_per_second']:>11.0f} "
              f"{rebuild['queries_per_second']:>12.0f} {speedup:>8.2f} "
              f"{p50_ratio:>8.2f} {delta['read_latency_p95'] * 1e3:>9.3f} "
              f"{delta['overlay'].get('folds_completed', 0):>6}")
        # Full runs gate the headline 1% ratio; the smoke size has so few
        # writes at 1% that engine overheads dominate, so smoke gates the
        # 10% ratio, where the maintenance strategies clearly separate.
        gate_ratio = 0.10 if args.smoke else 0.01
        if abs(ratio - gate_ratio) < 1e-9 and speedup < args.min_speedup:
            failures.append(
                f"delta path only {speedup:.2f}x the rebuild baseline at a "
                f"{gate_ratio:.0%} write ratio (required: {args.min_speedup}x)"
            )
        # Latency bound: until/while merging, every read's *budgeted* cost is
        # solved to land on tau; the median wall-clock read must stay within
        # a small factor of it.  Only full runs gate on the wall clock (CI
        # runners are too noisy), and the 0%-ratio stream of converged
        # lookups is far below tau by construction.
        if not args.smoke and ratio > 0 and tau:
            if delta["read_latency_p50"] > args.latency_factor * tau:
                failures.append(
                    f"median read latency {delta['read_latency_p50'] * 1e3:.3f} ms "
                    f"exceeds {args.latency_factor}x the interactivity budget "
                    f"tau = {tau * 1e3:.3f} ms at write ratio {ratio}"
                )

    payload = {
        "benchmark": "update_throughput",
        "run": run_metadata(args.n_elements),
        "n_elements": args.n_elements,
        "n_reads": args.n_reads,
        "method": args.method,
        "scan_fraction": args.scan_fraction,
        "min_speedup": args.min_speedup,
        "latency_factor": args.latency_factor,
        "calibrated": not args.simulated_constants,
        "results": results,
        "pass": not failures,
        "failures": failures,
    }
    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent.parent / "BENCH_updates.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {output}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    gated = "10%" if args.smoke else "1%"
    print(f"\nPASS: delta-store path >= {args.min_speedup}x rebuild-per-write at "
          f"a {gated} write ratio, answers exact, read latency within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
