"""Figure 6: the synthetic workload patterns.

Benchmarks the pattern generators and checks the defining property of each
pattern (sweep direction, zoom behaviour, skew concentration, periodicity).
"""

import numpy as np

from repro.experiments.workload_figures import figure6_summary


def test_fig6_synthetic_patterns(benchmark, bench_config):
    series = benchmark.pedantic(figure6_summary, args=(bench_config,), rounds=1, iterations=1)
    assert len(series) == 8

    # SeqOver sweeps forward, wrapping around once it reaches the end of the
    # domain: the overwhelming majority of steps move to the right.
    seq_lows = np.array([low for low, _ in series["SeqOver"]])
    forward_steps = (np.diff(seq_lows) > 0).mean()
    assert forward_steps > 0.8

    zoom_widths = [high - low for low, high in series["ZoomIn"]]
    assert zoom_widths[0] > zoom_widths[-1]

    zoom_out_widths = [high - low for low, high in series["ZoomOutAlt"]]
    assert zoom_out_widths[-1] > zoom_out_widths[0]

    skew_centres = np.array([(low + high) / 2 for low, high in series["Skew"]])
    assert ((skew_centres > 0.35) & (skew_centres < 0.65)).mean() > 0.7

    benchmark.extra_info["patterns"] = sorted(series)
