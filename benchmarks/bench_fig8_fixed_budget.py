"""Figure 8: cost-model validation with a fixed indexing budget (delta = 0.25).

Runs the SkyServer-like workload with every progressive index and compares
the measured per-query time against the cost-model prediction.
"""

from repro.experiments.cost_model_validation import run_cost_model_validation
from repro.experiments.reporting import render_cost_model_validation


def test_fig8_fixed_budget_cost_model(benchmark, bench_config):
    result = benchmark.pedantic(
        run_cost_model_validation,
        args=(bench_config,),
        kwargs={"adaptive": False},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_cost_model_validation(result))
    for algorithm in result.algorithms():
        series = result.series[algorithm]
        # The cost model must track the measured per-query behaviour: a clear
        # positive correlation over the whole workload.
        assert series.correlation() > 0.3, algorithm
        benchmark.extra_info[f"{algorithm}_correlation"] = round(series.correlation(), 3)
        benchmark.extra_info[f"{algorithm}_relative_error"] = round(
            series.mean_relative_error(), 2
        )
