"""Observability overhead: instrumented vs bare read throughput.

The unified observability layer claims its always-on metrics cost at most
**3%** of converged read throughput.  The hot path per query is one
``perf_counter`` pair plus one histogram observe (a ``bisect_right`` into
fixed log-scale buckets and three per-thread cell updates) — everything
else (cache counters, delta sizes, index phases) is *pulled* lazily at
snapshot time and costs nothing per query.  This benchmark measures that
claim at the paper's canonical scale:

* build a column, create a progressive index and drive it to convergence
  (instrumentation excluded from the build — the gate is about the
  steady-state read path, where relative overhead is largest because the
  per-query work is smallest);
* time the same random range workload with the metrics registry
  **enabled** and **disabled** (``obs.configure(metrics=...)``), a fresh
  index per arm so instruments bind against the arm's registry;
* run many short rounds, each timing all arms back to back in rotating
  order, and gate on the ratio of the **best** throughput each arm
  achieved.  On shared hosts (CI runners, VMs with CPU steal) absolute
  throughput can swing tens of percent between seconds, which dominates
  mean- and even median-based estimates; but interference only ever
  *subtracts* throughput, so each arm's best-of-N round converges on its
  interference-free speed and the best/best ratio isolates the true cost
  of the instrumentation.  Per-round medians and ratios are reported
  alongside for context.

A third, ungated ``tracing`` arm records the cost with per-query span
capture on as well — the detailed mode is off by default precisely
because it is allowed to cost more.

Results go to ``BENCH_observability.json``; the run exits non-zero when
the enabled-vs-disabled overhead exceeds the gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata, timed_stage

#: Queries driven per convergence attempt before giving up.
MAX_DRIVE_QUERIES = 16_384


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="rows in the benchmarked column")
    parser.add_argument("--queries", type=int, default=4_000,
                        help="measured queries per arm per round")
    parser.add_argument("--repeats", type=int, default=15,
                        help="rounds (median of per-round ratios gated)")
    parser.add_argument("--method", default="PQ", help="index algorithm acronym")
    parser.add_argument("--max-overhead", type=float, default=3.0,
                        help="gate: max %% throughput cost of enabled metrics")
    parser.add_argument("--seed", type=int, default=17, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs (gate relaxed)")
    parser.add_argument("--output", default=None, help="JSON output path")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 100_000)
        args.queries = min(args.queries, 2_000)
        args.repeats = min(args.repeats, 7)
        # Tiny runs are noise-dominated; keep the arms honest but do not
        # fail CI on scheduler jitter.  The nightly full run enforces 3%.
        args.max_overhead = max(args.max_overhead, 25.0)
    return args


def _converged_index(method: str, data: np.ndarray, predicates) -> "BaseIndex":
    from repro.core.query import Predicate
    from repro.engine.registry import create_index
    from repro.storage.column import Column

    index = create_index(method, Column(data, name="value"))
    for query_number in range(MAX_DRIVE_QUERIES):
        low, high = predicates[query_number % len(predicates)]
        index.query(Predicate(low, high))
        if index.converged:
            return index
    raise RuntimeError(f"{method} failed to converge within {MAX_DRIVE_QUERIES} queries")


def _build_arms(method: str, data: np.ndarray, predicates) -> dict:
    """One converged index per arm, built under that arm's configuration.

    Indexes bind their instruments at construction, so the ``disabled``
    arm's index holds null instruments permanently while the metrics arms
    hold live ones — the build cost is paid once and the measurement
    repeats merely toggle the tracer flag.
    """
    from repro import obs

    indexes = {}
    for arm in ("enabled", "disabled", "tracing"):
        obs.configure(metrics=(arm != "disabled"), tracing=False)
        try:
            indexes[arm] = _converged_index(method, data, predicates)
        finally:
            obs.configure(metrics=True, tracing=False)
    return indexes


def _measure_arm(arm: str, index, predicates, queries: int) -> float:
    """Converged read throughput (queries/second) for one configuration."""
    from repro import obs
    from repro.core.query import Predicate

    obs.configure(tracing=(arm == "tracing"))
    try:
        prepared = [
            Predicate(*predicates[n % len(predicates)]) for n in range(queries)
        ]
        query = index.query
        started = time.perf_counter()
        for predicate in prepared:
            query(predicate)
        elapsed = time.perf_counter() - started
        if arm == "tracing":
            obs.tracer().clear()
    finally:
        obs.configure(tracing=False)
    return queries / elapsed if elapsed > 0 else float("inf")


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    data = rng.integers(0, 10_000_000, size=args.rows)
    predicates = [
        (int(low), int(low) + 100_000)
        for low in rng.integers(0, 9_000_000, size=256)
    ]

    arms = ("enabled", "disabled", "tracing")
    with timed_stage("build", rows=args.rows):
        indexes = _build_arms(args.method, data, predicates)
    throughput = {arm: [] for arm in arms}
    rounds = []
    with timed_stage("measure", rows=args.rows):
        for repeat in range(args.repeats):
            # Rotate the arm order so slow drift (thermal, page cache)
            # never systematically lands on the same arm.
            this_round = {}
            for offset in range(len(arms)):
                arm = arms[(repeat + offset) % len(arms)]
                qps = _measure_arm(arm, indexes[arm], predicates, args.queries)
                throughput[arm].append(qps)
                this_round[arm] = qps
            rounds.append(this_round)
            print(
                f"round {repeat}: "
                + "  ".join(f"{arm} {this_round[arm]:,.0f} q/s" for arm in arms),
                flush=True,
            )

    medians = {arm: statistics.median(values) for arm, values in throughput.items()}
    best = {arm: max(values) for arm, values in throughput.items()}
    metrics_ratios = [r["enabled"] / r["disabled"] for r in rounds]
    tracing_ratios = [r["tracing"] / r["disabled"] for r in rounds]
    overhead_pct = 100.0 * (1.0 - best["enabled"] / best["disabled"])
    tracing_pct = 100.0 * (1.0 - best["tracing"] / best["disabled"])
    passed = overhead_pct <= args.max_overhead

    report = {
        "benchmark": "observability_overhead",
        "method": args.method,
        "queries_per_arm": args.queries,
        "repeats": args.repeats,
        "throughput_qps": {arm: sorted(values) for arm, values in throughput.items()},
        "median_qps": medians,
        "best_qps": best,
        "round_ratio_median": {
            "enabled": statistics.median(metrics_ratios),
            "tracing": statistics.median(tracing_ratios),
        },
        "metrics_overhead_percent": overhead_pct,
        "tracing_overhead_percent": tracing_pct,
        "max_overhead_percent": args.max_overhead,
        "passed": passed,
        "smoke": bool(args.smoke),
        "run": run_metadata(args.rows),
    }
    if args.output or not args.smoke:
        # Smoke runs never clobber the committed full-scale report.
        output = Path(args.output or Path(__file__).resolve().parent.parent / "BENCH_observability.json")
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps({k: report[k] for k in (
        "median_qps", "best_qps", "metrics_overhead_percent",
        "tracing_overhead_percent", "passed"
    )}, indent=2))
    if not passed:
        print(
            f"FAIL: metrics overhead {overhead_pct:.2f}% exceeds "
            f"{args.max_overhead:.2f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
