"""Out-of-core progressive indexing: dataset >> memory budget, exact answers.

The out-of-core substrate claims that a dataset at least **4x** the memory
budget indexes to convergence with exact answers while the engine's
resident footprint stays within **1.5x** the budget, and that paying for
compression + spilling costs at most **2x** the in-memory path's
time-to-first-answer.  This benchmark proves all three:

* the parent process writes a block-compressed (RPCOL2) column chunk by
  chunk — it never holds the dataset either — and computes streaming
  ground truth for a fixed predicate set;
* each arm runs in its **own subprocess** so peak-RSS readings are not
  polluted by the other arm or by the generator:

  - ``inmemory``: the column fully materialized, no budget — the baseline;
  - ``outofcore``: ``Column.from_file(..., memory_budget=...)`` over the
    compressed file; construction scratch, merge buffers and the block
    cache all derive from the one budget knob.

* the out-of-core arm is **memory-gated**: in full runs its address space
  is capped with ``RLIMIT_DATA`` at (post-import baseline + 1.5x budget +
  margin) — an arm that tried to materialize the base or allocate O(N)
  scratch dies with ``MemoryError`` instead of quietly passing; ``--smoke``
  runs gate on delta peak RSS instead (CI kernels differ in what
  ``RLIMIT_DATA`` covers), and the JSON records which ``gate_mode`` ran.

Both arms answer the same predicates before convergence, drive the index
to convergence, and answer them again after; every answer is compared to
the streamed truth.  Results go to ``BENCH_outofcore.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_outofcore.py
    PYTHONPATH=src python benchmarks/bench_outofcore.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Rows generated / compressed per chunk by the parent writer.
WRITE_CHUNK_ROWS = 1 << 18

#: Address-space margin on top of baseline + 1.5x budget (allocator slack,
#: thread stacks, the odd numpy temporary outside the budgeted paths).
RLIMIT_MARGIN_BYTES = 48 << 20

#: Safety cap on the convergence drive.
MAX_CONVERGENCE_QUERIES = 400


def _vm_data_bytes() -> int | None:
    """Current data-segment size from /proc (what RLIMIT_DATA caps)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmData:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux
        pass
    return None


def _generate_chunks(rows: int, seed: int, domain: int):
    rng = np.random.default_rng(seed)
    remaining = rows
    while remaining > 0:
        size = min(WRITE_CHUNK_ROWS, remaining)
        yield rng.integers(0, domain, size=size, dtype=np.int64)
        remaining -= size


def _predicates(seed: int, domain: int, count: int) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    width = max(1, domain // 20)
    lows = rng.integers(0, domain - width, size=count)
    return [[int(low), int(low) + width] for low in lows.tolist()]


def write_dataset(path: str, rows: int, seed: int, domain: int,
                  block_rows: int, predicates) -> list[list[int]]:
    """Stream the dataset into a compressed column file; return the truth.

    Ground truth for every predicate is accumulated chunk by chunk in
    Python ints, so neither the data nor any O(N) temporary is ever
    resident in the parent.
    """
    from repro.persist.compress import write_compressed_column

    truth = [[0, 0] for _ in predicates]

    def accounted():
        for chunk in _generate_chunks(rows, seed, domain):
            for entry, (low, high) in zip(truth, predicates):
                mask = (chunk >= low) & (chunk <= high)
                entry[0] += int(chunk[mask].sum(dtype=np.int64))
                entry[1] += int(mask.sum())
            yield chunk

    stats = write_compressed_column(path, accounted(), block_rows=block_rows)
    print(f"  dataset: {rows} rows -> {stats['payload_bytes']} compressed "
          f"bytes ({stats['blocks']} blocks)")
    return truth


# ----------------------------------------------------------------------
# Child arms (each runs in its own subprocess)
# ----------------------------------------------------------------------
def run_arm(arm: str, data_path: str, budget: int, spill_dir: str,
            predicates, rlimit: bool, fixed_delta: float) -> dict:
    import resource

    from repro.core.policy import FixedDelta
    from repro.core.query import Predicate
    from repro.engine.registry import create_index
    from repro.storage.column import Column
    from repro.storage.membudget import MemoryBudget

    def peak_rss() -> int:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) * (1 if sys.platform == "darwin" else 1024)

    baseline_rss = peak_rss()
    baseline_vmdata = _vm_data_bytes()
    result: dict = {
        "arm": arm,
        "baseline_rss": baseline_rss,
        "rlimit_enforced": False,
    }

    memory_budget = None
    if arm == "outofcore":
        memory_budget = MemoryBudget(budget, spill_dir=spill_dir)
        if rlimit and baseline_vmdata is not None:
            cap = baseline_vmdata + int(1.5 * memory_budget.total_bytes)
            cap += RLIMIT_MARGIN_BYTES
            resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
            result["rlimit_enforced"] = True
            result["rlimit_bytes"] = cap
        column = Column.from_file(data_path, name="v", memory_budget=memory_budget)
    else:
        from repro.persist.pager import map_column_file

        column = Column(np.asarray(map_column_file(data_path)), name="v")

    index = create_index("PQ", column, budget=FixedDelta(fixed_delta))

    def answer(predicate) -> tuple[list[int], float]:
        started = time.perf_counter()
        reply = index.query(Predicate(predicate[0], predicate[1]))
        return [int(reply.value_sum), int(reply.count)], time.perf_counter() - started

    started_total = time.perf_counter()
    answers_pre = []
    ttfa = None
    for predicate in predicates:
        entry, seconds = answer(predicate)
        if ttfa is None:
            ttfa = seconds
        answers_pre.append(entry)

    queries = len(predicates)
    while not index.converged and queries < MAX_CONVERGENCE_QUERIES:
        answer(predicates[queries % len(predicates)])
        queries += 1
        if memory_budget is not None and queries % 8 == 0:
            memory_budget.trim()

    answers_post = [answer(predicate)[0] for predicate in predicates]

    result.update({
        "ttfa_seconds": ttfa,
        "total_seconds": time.perf_counter() - started_total,
        "queries_to_convergence": queries,
        "converged": bool(index.converged),
        "answers_pre": answers_pre,
        "answers_post": answers_post,
        "peak_rss": peak_rss(),
    })
    if memory_budget is not None:
        result["memory"] = {
            key: value for key, value in memory_budget.stats().items()
            if not isinstance(value, dict)
        }
        result["scratch"] = memory_budget.stats().get("scratch")
        result["block_cache"] = memory_budget.stats().get("block_cache")
    return result


def spawn_arm(arm: str, args, data_path: str, spill_dir: str,
              queries_path: str, rlimit: bool) -> dict:
    out_path = os.path.join(spill_dir, f"{arm}.json")
    command = [
        sys.executable, os.path.abspath(__file__),
        "--child-arm", arm,
        "--data", data_path,
        "--budget", str(args.budget),
        "--spill-dir", spill_dir,
        "--queries", queries_path,
        "--child-out", out_path,
        "--fixed-delta", str(args.fixed_delta),
    ]
    if rlimit:
        command.append("--rlimit")
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise AssertionError(
            f"{arm} arm exited with {completed.returncode}:\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=17_000_000,
                        help="column size (default: 17M rows = 130 MiB int64)")
    parser.add_argument("--budget", type=int, default=32 << 20,
                        help="memory budget in bytes (default: 32 MiB; the "
                             "dataset must be >= 4x this)")
    parser.add_argument("--block-rows", type=int, default=1 << 16,
                        help="compressed block size in rows (default: 65536)")
    parser.add_argument("--n-predicates", type=int, default=32,
                        help="checked predicates per pass (default: 32)")
    parser.add_argument("--fixed-delta", type=float, default=0.25,
                        help="per-query indexing budget delta (default: 0.25)")
    parser.add_argument("--ttfa-factor", type=float, default=2.0,
                        help="allowed out-of-core / in-memory first-answer "
                             "ratio, full runs only (default: 2.0)")
    parser.add_argument("--rss-factor", type=float, default=1.5,
                        help="allowed delta-RSS / budget ratio (default: 1.5)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: 2.2M rows, 4 MiB budget, "
                             "delta-RSS gate instead of RLIMIT_DATA, "
                             "no JSON output unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: "
                             "BENCH_outofcore.json at the repository root)")
    # Child-process plumbing (internal).
    parser.add_argument("--child-arm", choices=("inmemory", "outofcore"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--data", help=argparse.SUPPRESS)
    parser.add_argument("--spill-dir", help=argparse.SUPPRESS)
    parser.add_argument("--queries", help=argparse.SUPPRESS)
    parser.add_argument("--child-out", help=argparse.SUPPRESS)
    # Child-internal, but also honoured at the parent level: forces the
    # kernel RLIMIT_DATA cap on the out-of-core arm even in --smoke mode
    # (CI uses `--smoke --rlimit` for a hard memory gate at small size).
    parser.add_argument("--rlimit", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.smoke and args.child_arm is None:
        args.rows = min(args.rows, 2_200_000)
        args.budget = min(args.budget, 4 << 20)
        args.block_rows = min(args.block_rows, 1 << 14)
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.child_arm is not None:
        with open(args.queries, "r", encoding="utf-8") as handle:
            predicates = json.load(handle)
        result = run_arm(args.child_arm, args.data, args.budget,
                         args.spill_dir, predicates, args.rlimit,
                         args.fixed_delta)
        with open(args.child_out, "w", encoding="utf-8") as handle:
            json.dump(result, handle)
        return 0

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_common import run_metadata

    domain = 1 << 30
    ratio = args.rows * 8 / args.budget
    print(f"out-of-core: {args.rows} rows ({args.rows * 8 >> 20} MB raw) "
          f"under a {args.budget >> 20} MiB budget ({ratio:.1f}x)")
    if ratio < 4:
        raise SystemExit("dataset must be at least 4x the memory budget")

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench_outofcore_") as workdir:
        data_path = os.path.join(workdir, "v.col")
        predicates = _predicates(args.seed + 1, domain, args.n_predicates)
        truth = write_dataset(data_path, args.rows, args.seed, domain,
                              args.block_rows, predicates)
        queries_path = os.path.join(workdir, "queries.json")
        with open(queries_path, "w", encoding="utf-8") as handle:
            json.dump(predicates, handle)

        arms = {}
        for arm in ("inmemory", "outofcore"):
            spill_dir = os.path.join(workdir, arm)
            os.makedirs(spill_dir, exist_ok=True)
            arms[arm] = spawn_arm(
                arm, args, data_path, spill_dir, queries_path,
                rlimit=(arm == "outofcore" and (args.rlimit or not args.smoke)),
            )
            report = arms[arm]
            print(f"  {arm:>9}: first answer {report['ttfa_seconds'] * 1e3:.1f} ms, "
                  f"converged in {report['queries_to_convergence']} queries "
                  f"({report['total_seconds']:.2f}s), peak RSS "
                  f"{report['peak_rss'] >> 20} MB")

        # Exactness: every answer of both arms, pre and post convergence.
        wrong = 0
        for arm, report in arms.items():
            for label in ("answers_pre", "answers_post"):
                for number, (got, want) in enumerate(zip(report[label], truth)):
                    if got != want:
                        wrong += 1
                        if wrong <= 3:
                            failures.append(
                                f"{arm} {label}[{number}]: got {got}, want {want}"
                            )
        if wrong > 3:
            failures.append(f"... {wrong} wrong answers in total")
        if wrong == 0:
            checked = 2 * 2 * len(predicates)
            print(f"  exactness: {checked} answers match the streamed truth")

        out = arms["outofcore"]
        if not out["converged"]:
            failures.append(
                f"out-of-core arm failed to converge within "
                f"{out['queries_to_convergence']} queries"
            )

        # Memory gate.
        delta_rss = out["peak_rss"] - out["baseline_rss"]
        gate_mode = "rlimit_data" if out.get("rlimit_enforced") else "delta_rss"
        print(f"  memory gate [{gate_mode}]: delta RSS {delta_rss >> 20} MB over "
              f"a {args.budget >> 20} MiB budget"
              + (f" (hard cap {out['rlimit_bytes'] >> 20} MB)"
                 if out.get("rlimit_enforced") else ""))
        if gate_mode == "delta_rss":
            allowed = args.rss_factor * args.budget + (RLIMIT_MARGIN_BYTES >> 1)
            if delta_rss > allowed:
                failures.append(
                    f"out-of-core delta RSS {delta_rss >> 20} MB exceeds "
                    f"{args.rss_factor} x budget + margin "
                    f"({int(allowed) >> 20} MB)"
                )
        # Under rlimit_data the kernel already enforced the cap: the arm
        # completing (no MemoryError) IS the gate passing.

        # First-answer latency gate (full runs: timing gates on a loaded CI
        # runner are noise, so smoke records the ratio without failing).
        ttfa_ratio = (out["ttfa_seconds"]
                      / max(arms["inmemory"]["ttfa_seconds"], 1e-9))
        print(f"  first answer: {ttfa_ratio:.2f}x the in-memory path "
              f"(allowed: {args.ttfa_factor}x)")
        if not args.smoke and ttfa_ratio > args.ttfa_factor:
            failures.append(
                f"out-of-core first answer {ttfa_ratio:.2f}x the in-memory "
                f"path (allowed: {args.ttfa_factor}x)"
            )

        payload = {
            "benchmark": "outofcore",
            "run": run_metadata(args.rows, memory_budget=args.budget),
            "dataset_bytes": args.rows * 8,
            "dataset_over_budget": ratio,
            "block_rows": args.block_rows,
            "gate_mode": gate_mode,
            "rss_factor": args.rss_factor,
            "ttfa_factor": args.ttfa_factor,
            "ttfa_ratio": ttfa_ratio,
            "outofcore_delta_rss": int(delta_rss),
            "answers_checked": 2 * 2 * len(predicates),
            "arms": arms,
            "pass": not failures,
            "failures": failures,
        }

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent.parent / "BENCH_outofcore.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {output}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nPASS: {ratio:.1f}x-budget dataset indexed to convergence with "
          "exact answers within the memory gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
