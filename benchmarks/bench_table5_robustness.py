"""Table 5: robustness (variance of the first 100 query times) on the synthetic grid."""

import numpy as np

from repro.experiments.reporting import render_synthetic_table


def test_table5_robustness(benchmark, synthetic_comparison):
    result = synthetic_comparison

    def derive():
        return {
            block: result.table("robustness_variance", block) for block in result.blocks()
        }

    tables = benchmark.pedantic(derive, rounds=1, iterations=1)
    print("\n" + render_synthetic_table(result, "robustness_variance", "Table 5: robustness (variance)"))

    # Paper: progressive indexing is (orders of magnitude) more robust than
    # adaptive indexing because the per-query indexing penalty is controlled.
    ratios = []
    for block, table in tables.items():
        for pattern, values in table.items():
            progressive = [values[name] for name in ("PQ", "PB", "PLSD", "PMSD") if name in values]
            if "AA" not in values or not progressive:
                continue
            best_progressive = min(progressive)
            if best_progressive > 0:
                ratios.append(values["AA"] / best_progressive)
            assert best_progressive <= values["AA"], (block, pattern)
    if ratios:
        benchmark.extra_info["median_AA_vs_best_progressive_variance_ratio"] = round(
            float(np.median(ratios)), 1
        )
