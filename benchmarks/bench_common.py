"""Shared helpers for the standalone benchmark scripts.

Every ``BENCH_*.json`` writer stamps its payload with :func:`run_metadata`
so results can be compared across machines and scales: a speedup measured
with 2 workers on a 16-core box and one measured on a single-core CI
runner are different experiments, and the JSON should say so.
"""

from __future__ import annotations

import os


def run_metadata(rows: int, *, workers: int | None = None,
                 shards: int | None = None) -> dict:
    """Machine/scale context recorded by every ``BENCH_*.json`` writer."""
    return {
        "rows": int(rows),
        "workers": int(workers) if workers is not None else None,
        "shards": int(shards) if shards is not None else None,
        "cpu_count": os.cpu_count(),
    }
