"""Shared helpers for the standalone benchmark scripts.

Every ``BENCH_*.json`` writer stamps its payload with :func:`run_metadata`
so results can be compared across machines and scales: a speedup measured
with 2 workers on a 16-core box and one measured on a single-core CI
runner are different experiments, and the JSON should say so.  The
out-of-core benchmarks additionally record the process's peak RSS and the
active ``memory_budget``, so "stayed within budget" is an auditable claim,
not an assertion lost to the console.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter

#: Stages recorded by :func:`timed_stage` in this process, in order.
_STAGES: list[dict] = []


class StageTimer:
    """Handle yielded by :func:`timed_stage`; ``seconds`` is set on exit."""

    __slots__ = ("name", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0


@contextmanager
def timed_stage(name: str, **attrs):
    """Time one benchmark phase through the engine's span API.

    Replaces the ad-hoc ``perf_counter()`` pairs the benchmark scripts
    used to carry: the phase becomes a ``bench.<name>`` span (visible in
    trace exports when tracing is on) and is recorded for
    :func:`stage_breakdown`, so every ``BENCH_*.json`` that stamps
    :func:`run_metadata` gains a per-phase breakdown for free.  The
    yielded :class:`StageTimer` exposes ``seconds`` after the block so
    callers can keep using the measurement in their own arithmetic.
    """
    from repro import obs

    timer = StageTimer(name)
    with obs.span(f"bench.{name}", **attrs):
        started = perf_counter()
        try:
            yield timer
        finally:
            timer.seconds = perf_counter() - started
            _STAGES.append({"stage": name, "seconds": timer.seconds, **attrs})


def stage_breakdown() -> dict:
    """Aggregate all :func:`timed_stage` phases recorded so far.

    Maps stage name to total ``seconds`` and invocation ``count`` —
    the per-phase breakdown :func:`run_metadata` embeds in every
    benchmark's JSON payload.
    """
    summary: dict[str, dict] = {}
    for record in _STAGES:
        entry = summary.setdefault(record["stage"], {"seconds": 0.0, "count": 0})
        entry["seconds"] += record["seconds"]
        entry["count"] += 1
    return summary


def peak_rss_bytes() -> int | None:
    """This process's lifetime peak resident set size, in bytes.

    Uses ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux,
    bytes on macOS).  ``None`` on platforms without the ``resource``
    module.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def run_metadata(rows: int, *, workers: int | None = None,
                 shards: int | None = None,
                 memory_budget: int | None = None) -> dict:
    """Machine/scale context recorded by every ``BENCH_*.json`` writer.

    Includes the :func:`stage_breakdown` of every :func:`timed_stage`
    phase the benchmark ran, so per-phase timings land in the JSON
    without each script assembling them by hand.
    """
    return {
        "rows": int(rows),
        "workers": int(workers) if workers is not None else None,
        "shards": int(shards) if shards is not None else None,
        "memory_budget": int(memory_budget) if memory_budget is not None else None,
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_count": os.cpu_count(),
        "stages": stage_breakdown(),
    }
