"""Shared helpers for the standalone benchmark scripts.

Every ``BENCH_*.json`` writer stamps its payload with :func:`run_metadata`
so results can be compared across machines and scales: a speedup measured
with 2 workers on a 16-core box and one measured on a single-core CI
runner are different experiments, and the JSON should say so.  The
out-of-core benchmarks additionally record the process's peak RSS and the
active ``memory_budget``, so "stayed within budget" is an auditable claim,
not an assertion lost to the console.
"""

from __future__ import annotations

import os


def peak_rss_bytes() -> int | None:
    """This process's lifetime peak resident set size, in bytes.

    Uses ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux,
    bytes on macOS).  ``None`` on platforms without the ``resource``
    module.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def run_metadata(rows: int, *, workers: int | None = None,
                 shards: int | None = None,
                 memory_budget: int | None = None) -> dict:
    """Machine/scale context recorded by every ``BENCH_*.json`` writer."""
    return {
        "rows": int(rows),
        "workers": int(workers) if workers is not None else None,
        "shards": int(shards) if shards is not None else None,
        "memory_budget": int(memory_budget) if memory_budget is not None else None,
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_count": os.cpu_count(),
    }
