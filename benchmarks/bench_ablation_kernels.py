"""Ablation: cracking-kernel choice and bucket block size.

Not a paper artefact, but an ablation of two design choices DESIGN.md calls
out: the partition kernel used when cracking a piece and the block size of
the linked bucket lists (the paper's ``sb``).
"""

import numpy as np
import pytest

from repro.cracking.kernels import partition_predicated, partition_two_sided
from repro.progressive.blocks import BlockList


@pytest.mark.parametrize("kernel", [partition_predicated, partition_two_sided])
def test_ablation_partition_kernels(benchmark, kernel):
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1_000_000, size=500_000)

    def crack():
        working = values.copy()
        return kernel(working, 500_000)

    boundary = benchmark(crack)
    assert 0 < boundary < values.size


@pytest.mark.parametrize("block_size", [1_024, 4_096, 16_384])
def test_ablation_bucket_block_size(benchmark, block_size):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 1_000_000, size=200_000)

    def fill_and_scan():
        blocks = BlockList(block_size=block_size)
        blocks.append_array(values)
        return blocks.scan(0, 500_000).count

    count = benchmark(fill_and_scan)
    assert count == int((values <= 500_000).sum())
