"""Restart warm-up: cold index rebuild vs. warm checkpoint resume.

The durability subsystem's whole point is that the construction cost a
progressive index amortized into past queries is not re-paid after a
restart.  This benchmark measures exactly that, per algorithm:

* **setup** — a :class:`~repro.persist.database.Database` is created over
  ``--rows`` rows, an index is built and driven to convergence, and the
  database is closed (which checkpoints the index state and truncates the
  WAL).

* **warm** — ``Database.open`` on the same directory: recovery restores the
  index from the checkpoint (mid-/post-convergence, never RAW) and the
  timer stops after the first query answer.  *Time-to-first-answer* here is
  open + checkpoint restore + one lookup.

* **cold** — the same base data without a checkpoint: recovery re-creates
  the index fresh (RAW), and the timer stops once the index has been driven
  back to convergence and answered a query — the construction cost a
  restart without checkpoints re-pays.  *Queries-to-reconvergence* counts
  the driven queries (warm needs zero).

The full run asserts the acceptance gate — warm restart reaches its first
answer at least ``--min-speedup`` (default 5x) faster than the cold rebuild
for every measured algorithm — and writes ``BENCH_persistence.json``.  The
``--smoke`` mode runs a small scale with a relaxed gate for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_restart_warmup.py
    PYTHONPATH=src python benchmarks/bench_restart_warmup.py --smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from bench_common import run_metadata, timed_stage
from repro.core.phase import IndexPhase
from repro.persist.database import Database

#: Algorithms measured by default: the paper's four progressive indexes —
#: the structures whose convergence investment the checkpoint preserves.
#: (The FI baseline re-pays a Python-level B+-tree bulk load on *both* paths,
#: so its warm/cold gap measures deserialization, not saved construction.)
DEFAULT_ALGORITHMS = ("PQ", "PMSD", "PLSD", "PB")

#: Queries driven per convergence attempt before giving up.
MAX_DRIVE_QUERIES = 4096


def _predicates(rng: np.random.Generator, domain: int, count: int):
    lows = rng.integers(0, int(domain * 0.9), size=count)
    return [(int(low), int(low) + domain // 10) for low in lows]


def _drive_to_convergence(db: Database, column: str, predicates) -> int:
    """Query until the index converges; returns the number of queries."""
    index = db.index_for(column)
    for number in range(MAX_DRIVE_QUERIES):
        if index.phase in (IndexPhase.CONVERGED, IndexPhase.MERGE):
            return number
        predicate = predicates[number % len(predicates)]
        db.between(column, *predicate)
    return MAX_DRIVE_QUERIES


def measure_algorithm(method: str, data: np.ndarray, domain: int, workdir: Path) -> dict:
    rng = np.random.default_rng(99)
    predicates = _predicates(rng, domain, 64)
    warm_dir = str(workdir / f"warm-{method}")
    cold_dir = str(workdir / f"cold-{method}")

    # Setup: build to convergence, checkpoint, close.
    db = Database.create(warm_dir, {"ra": data})
    db.create_index("ra", method=method, fixed_delta=1.0)
    build_queries = _drive_to_convergence(db, "ra", predicates)
    db.close()  # checkpoints the converged index

    # Cold control: same data and catalog entry, no checkpoint.
    db = Database.create(cold_dir, {"ra": data})
    db.create_index("ra", method=method, fixed_delta=1.0)
    db.close(checkpoint=False)

    # Warm restart: open + restore + first answer.
    with timed_stage("warm_restart", algorithm=method) as warm_timer:
        db = Database.open(warm_dir)
        warm_queries = _drive_to_convergence(db, "ra", predicates)
        warm_result = db.between("ra", *predicates[0])
    warm_seconds = warm_timer.seconds
    warm_phase = db.index_for("ra").phase.value
    db.close(checkpoint=False)

    # Cold restart: open + full rebuild + first answer.
    with timed_stage("cold_restart", algorithm=method) as cold_timer:
        db = Database.open(cold_dir)
        cold_queries = _drive_to_convergence(db, "ra", predicates)
        cold_result = db.between("ra", *predicates[0])
    cold_seconds = cold_timer.seconds
    db.close(checkpoint=False)

    shutil.rmtree(warm_dir)
    shutil.rmtree(cold_dir)
    return {
        "algorithm": method,
        "build_queries_to_converge": build_queries,
        "warm_seconds_to_first_answer": warm_seconds,
        "cold_seconds_to_first_answer": cold_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "warm_queries_to_reconvergence": warm_queries,
        "cold_queries_to_reconvergence": cold_queries,
        "warm_phase_after_open": warm_phase,
        "answers_match": bool(
            warm_result.count == cold_result.count
            and float(warm_result.value_sum) == float(cold_result.value_sum)
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--algorithms", default=",".join(DEFAULT_ALGORITHMS),
        help="comma-separated algorithm acronyms",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale + relaxed gate for CI (100k rows, 2x)",
    )
    parser.add_argument(
        "--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_persistence.json"),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # At smoke scale the fixed open overheads (catalog, mmap, CRC scan)
        # dominate the warm path, so the gate only guards against gross
        # regressions; the 5x acceptance gate is the full 1M-row run.
        args.rows = min(args.rows, 100_000)
        args.min_speedup = min(args.min_speedup, 1.3)

    domain = 10_000_000
    rng = np.random.default_rng(3)
    data = rng.integers(0, domain, size=args.rows)
    workdir = Path(tempfile.mkdtemp(prefix="repro-restart-bench-"))

    results = []
    failures = []
    try:
        for method in [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]:
            entry = measure_algorithm(method, data, domain, workdir)
            results.append(entry)
            print(
                f"{method:5s} cold {entry['cold_seconds_to_first_answer']*1e3:9.1f} ms "
                f"({entry['cold_queries_to_reconvergence']} queries)   "
                f"warm {entry['warm_seconds_to_first_answer']*1e3:9.1f} ms "
                f"({entry['warm_queries_to_reconvergence']} queries)   "
                f"speedup {entry['speedup']:6.1f}x   phase={entry['warm_phase_after_open']}"
            )
            if not entry["answers_match"]:
                failures.append(f"{method}: warm and cold answers diverge")
            if entry["warm_phase_after_open"] in ("inactive", "creation"):
                failures.append(f"{method}: warm restart fell back to phase "
                                f"{entry['warm_phase_after_open']}")
            if entry["speedup"] < args.min_speedup:
                failures.append(
                    f"{method}: warm speedup {entry['speedup']:.2f}x is below the "
                    f"{args.min_speedup:.1f}x gate"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "benchmark": "restart_warmup",
        "run": run_metadata(args.rows),
        "rows": args.rows,
        "min_speedup": args.min_speedup,
        "smoke": bool(args.smoke),
        "results": results,
        "failures": failures,
    }
    if not args.smoke:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("restart warm-up gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
