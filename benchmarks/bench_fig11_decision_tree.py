"""Figure 11: consistency of the decision tree with the measured winners.

The decision tree recommends an algorithm per scenario; this benchmark checks
the recommendations against the measured cumulative times of the synthetic
grid (Tables 3-5), i.e. that the advice the paper distils from its evaluation
also follows from our reproduction.
"""

from collections import Counter

from repro.engine.decision_tree import recommend_index


def test_fig11_decision_tree_consistency(benchmark, synthetic_comparison):
    result = synthetic_comparison

    def recommendations():
        return {
            "uniform_range": recommend_index().acronym,
            "skewed_range": recommend_index(skewed_data=True).acronym,
            "point_queries": recommend_index(point_query_workload=True).acronym,
            "memory_constrained": recommend_index(memory_constrained=True).acronym,
        }

    recommended = benchmark.pedantic(recommendations, rounds=1, iterations=1)
    assert recommended == {
        "uniform_range": "PMSD",
        "skewed_range": "PB",
        "point_queries": "PLSD",
        "memory_constrained": "PQ",
    }

    # Cross-check against the measured winners (progressive algorithms only).
    def progressive_winners(block):
        winners = []
        for pattern, values in result.table("cumulative_seconds", block).items():
            candidates = {
                name: value for name, value in values.items() if name != "AA"
            }
            if candidates:
                winners.append(min(candidates, key=candidates.get))
        return Counter(winners)

    # The measured winners per block are recorded for EXPERIMENTS.md; at the
    # paper's scale they coincide with the recommendations, at scaled-down
    # sizes constant per-query overhead can shift the close calls (PQ vs
    # PMSD, PQ vs PLSD), so the winners are reported rather than asserted.
    point_winners = progressive_winners("point")
    uniform_winners = progressive_winners("uniform")
    skewed_winners = progressive_winners("skewed")

    # One relation is robust at any scale: PLSD is never the right choice for
    # uniform range workloads (its buckets cannot prune range predicates).
    if uniform_winners:
        assert "PLSD" not in uniform_winners

    benchmark.extra_info["skewed_winners"] = dict(skewed_winners)

    benchmark.extra_info["recommended"] = recommended
    benchmark.extra_info["uniform_winners"] = dict(uniform_winners)
    benchmark.extra_info["point_winners"] = dict(point_winners)
