"""Table 2: full SkyServer-like workload comparison across all algorithms."""

from repro.experiments.skyserver_comparison import run_skyserver_comparison
from repro.experiments.reporting import render_table2


def test_table2_skyserver_comparison(benchmark, bench_config):
    result = benchmark.pedantic(
        run_skyserver_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    print("\n" + render_table2(result))

    progressive = ("PQ", "PMSD", "PLSD", "PB")
    cracking = ("STD", "STC", "PSTC", "CGI", "AA")

    # The full scan never converges and has the cheapest first query.
    assert result.row("FS").convergence_query is None
    # The full index converges immediately but has by far the most expensive
    # first query among the baselines and progressive methods.
    assert result.row("FI").convergence_query == 1
    assert result.row("FI").first_query_seconds > result.row("FS").first_query_seconds

    for name in progressive:
        row = result.row(name)
        # Progressive indexes converge within the workload...
        assert row.convergence_query is not None
        # ...and their first query stays within a small factor of a scan,
        # well below the full-index stall.
        assert row.first_query_seconds < result.row("FI").first_query_seconds
    for name in cracking:
        # Adaptive indexing never reaches a converged state.
        assert result.row(name).convergence_query is None

    # Robustness: progressive indexing has (orders of magnitude) lower
    # variance than the cracking family.
    best_progressive = min(result.row(name).robustness_variance for name in progressive)
    worst_cracking = max(result.row(name).robustness_variance for name in cracking)
    assert best_progressive < worst_cracking

    for name in result.algorithms():
        row = result.row(name)
        benchmark.extra_info[name] = {
            "first_query_s": round(row.first_query_seconds, 5),
            "first_query_vs_scan": round(row.first_query_scan_ratio, 1),
            "convergence": row.convergence_query,
            "robustness_var": float(f"{row.robustness_variance:.3e}"),
            "cumulative_s": round(row.cumulative_seconds, 3),
        }
