"""Concurrent query service: throughput scaling and per-class latency.

Measures the serving layer end to end — real sockets, real threads, the
MVCC reader views, the single WAL-style writer and the progressive-work
scheduler — on a read-heavy mixed read/write stream at N ∈ {1, 4, 16}
clients.

**Client model (the honest part).**  Every reader is a *closed-loop client
with think time*: it issues one request, waits for the answer, then
"thinks" for a fixed ``--think`` seconds before the next request — the
standard interactive-analyst model.  The same model runs at every N, so
aggregate throughput growing with N measures the service's ability to
overlap clients (scheduler admission, lock-free converged reads, snapshot
isolation), not a change in workload shape.  An open-loop blast of
back-to-back requests would saturate a single CPU with protocol work at
N = 1 and show no scaling by construction; with think time the offered
load per client is fixed and the aggregate-vs-N curve is meaningful.

Each level runs against a fresh server: a converged-by-warmup progressive
index (PQ), 75% ``interactive``-class and 25% ``batch``-class readers
issuing range / point / batch reads with periodic re-pins, plus one writer
client committing small bursts throughout (the mixed read/write stream).

**Gates** (full run):

* 16-client aggregate read throughput ≥ ``--min-scaling`` (default 4×) the
  single-client throughput;
* per-class client-observed p99 latency ≤ 2 × the class's interactivity
  target τ (interactive 5 ms, batch 50 ms).

``--smoke`` shrinks the levels to N ∈ {1, 4}, shortens the measurement and
relaxes the scaling gate to 1.5× for CI.  Results land in
``BENCH_concurrent.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrent_service.py
    PYTHONPATH=src python benchmarks/bench_concurrent_service.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from bench_common import run_metadata
from repro.core.policy import FixedDelta
from repro.engine.session import IndexingSession
from repro.serve.client import ServiceClient
from repro.serve.server import QueryServer
from repro.storage.column import Column

ROWS = 50_000
DOMAIN = 1_000_000

#: Wall-clock interactivity targets per connection class (seconds).  These
#: mirror the model-second τ of the default classes; the p99 gate is 2×.
CLASS_TAU = {"interactive": 0.005, "batch": 0.05}


def fresh_server(tmpdir: Path, level: int) -> QueryServer:
    data = np.random.default_rng(7).integers(0, DOMAIN, size=ROWS, dtype=np.int64)
    session = IndexingSession(Column(data, name="ra"))
    session.create_index("ra", method="PQ", budget=FixedDelta(0.25))
    server = QueryServer(
        session=session, address=str(tmpdir / f"bench-{level}.sock")
    )
    server.start()
    return server


def warmup(address, queries: int = 60) -> None:
    """Converge the index before measuring (steady-state service)."""
    with ServiceClient(address, role="reader", connection_class="admin") as client:
        rng = np.random.default_rng(1)
        for _ in range(queries):
            low = int(rng.integers(0, DOMAIN - 100_000))
            client.between("ra", low, low + 100_000)


def reader_client(address, cls, think, barrier, deadline_box, out, seed):
    rng = np.random.default_rng(seed)
    latencies = []
    try:
        client = ServiceClient(address, role="reader", connection_class=cls)
        barrier.wait()
        deadline = deadline_box["t"]
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            kind = int(rng.integers(0, 20))
            low = int(rng.integers(0, DOMAIN - 50_000))
            start = time.perf_counter()
            if kind == 0:
                client.refresh()
            elif kind <= 2:
                bounds = [
                    [int(rng.integers(0, DOMAIN - 10_000))] * 2 for _ in range(4)
                ]
                client.batch("ra", [[b[0], b[0] + 10_000] for b in bounds])
            elif kind <= 5:
                client.equals("ra", int(rng.integers(0, DOMAIN)))
            else:
                client.between("ra", low, low + 50_000)
            latencies.append(time.perf_counter() - start)
            time.sleep(think)
        client.close()
    except Exception as exc:  # pragma: no cover - surfaced in the summary
        out.append((cls, latencies, exc))
        return
    out.append((cls, latencies, None))


def writer_client(address, barrier, deadline_box, stop):
    rng = np.random.default_rng(99)
    client = ServiceClient(address, role="writer")
    barrier.wait()
    deadline = deadline_box["t"]
    commits = 0
    while time.perf_counter() < deadline and not stop.is_set():
        client.insert(rng.integers(0, DOMAIN, size=20).astype(np.int64).tolist())
        if rng.integers(0, 4) == 0:
            low = int(rng.integers(0, DOMAIN - 5_000))
            client.delete("ra", low, low + 5_000)
        client.commit()
        commits += 1
        time.sleep(0.05)
    client.close()
    return commits


def run_level(tmpdir: Path, n_clients: int, duration: float, think: float) -> dict:
    server = fresh_server(tmpdir, n_clients)
    try:
        warmup(server.endpoint)
        barrier = threading.Barrier(n_clients + 2)  # readers + writer + main
        out: list = []
        stop = threading.Event()
        # Clients connect first, then block on the barrier; the main thread
        # fixes the deadline immediately before joining the barrier, so
        # connection setup never eats into the measured window (every
        # client reads the deadline only after the barrier releases).
        deadline_box = {"t": 0.0}

        def reader_entry(i):
            cls = "batch" if i % 4 == 3 else "interactive"
            reader_client(
                server.endpoint, cls, think, barrier, deadline_box, out, 1_000 + i
            )

        def writer_entry():
            writer_client(server.endpoint, barrier, deadline_box, stop)

        threads = [
            threading.Thread(target=reader_entry, args=(i,)) for i in range(n_clients)
        ]
        threads.append(threading.Thread(target=writer_entry))
        for thread in threads:
            thread.start()
        deadline_box["t"] = time.perf_counter() + duration
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=duration + 120)
        elapsed = time.perf_counter() - start
        stop.set()

        failures = [exc for _, _, exc in out if exc is not None]
        if failures:
            raise RuntimeError(f"client failed: {failures[0]!r}")
        per_class = {}
        total_ops = 0
        for cls, latencies, _ in out:
            per_class.setdefault(cls, []).extend(latencies)
            total_ops += len(latencies)
        level = {
            "clients": n_clients,
            "duration_seconds": round(elapsed, 3),
            "think_seconds": think,
            "reader_ops": total_ops,
            "aggregate_qps": round(total_ops / elapsed, 1),
            "classes": {},
        }
        for cls, latencies in sorted(per_class.items()):
            arr = np.asarray(latencies)
            level["classes"][cls] = {
                "ops": int(arr.size),
                "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
                "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
                "tau_ms": CLASS_TAU[cls] * 1e3,
            }
        level["scheduler"] = server.engine.scheduler.stats()["classes"]
        return level
    finally:
        server.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, relaxed CI run")
    parser.add_argument("--duration", type=float, default=None, help="seconds per level")
    parser.add_argument("--think", type=float, default=0.002, help="client think time")
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="required aggregate-qps ratio of the largest level vs one client",
    )
    parser.add_argument("--output", default="BENCH_concurrent.json")
    args = parser.parse_args(argv)

    levels = [1, 4] if args.smoke else [1, 4, 16]
    duration = args.duration or (1.5 if args.smoke else 5.0)
    min_scaling = args.min_scaling or (1.5 if args.smoke else 4.0)

    import tempfile

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        for n_clients in levels:
            level = run_level(Path(tmp), n_clients, duration, args.think)
            results.append(level)
            print(
                f"N={n_clients:>2}: {level['aggregate_qps']:>8.1f} q/s aggregate, "
                + ", ".join(
                    f"{cls} p99={stats['p99_ms']:.2f}ms"
                    for cls, stats in level["classes"].items()
                )
            )

    base_qps = results[0]["aggregate_qps"]
    top = results[-1]
    scaling = top["aggregate_qps"] / base_qps
    print(f"scaling N={top['clients']} vs N=1: {scaling:.2f}x (gate: >= {min_scaling}x)")

    failures = []
    if scaling < min_scaling:
        failures.append(
            f"aggregate throughput scaled only {scaling:.2f}x at "
            f"N={top['clients']} (required {min_scaling}x)"
        )
    if not args.smoke:
        for level in results:
            for cls, stats in level["classes"].items():
                bound = 2.0 * CLASS_TAU[cls] * 1e3
                if stats["p99_ms"] > bound:
                    failures.append(
                        f"N={level['clients']} class {cls!r}: p99 "
                        f"{stats['p99_ms']:.2f}ms > 2*tau ({bound:.1f}ms)"
                    )

    report = {
        "benchmark": "concurrent_service",
        "run": run_metadata(ROWS, workers=top["clients"]),
        "rows": ROWS,
        "client_model": (
            "closed-loop with fixed think time per reader (same model at every "
            "N); 75% interactive / 25% batch class mix; one writer committing "
            "bursts throughout"
        ),
        "smoke": bool(args.smoke),
        "min_scaling": min_scaling,
        "levels": results,
        "scaling": round(scaling, 2),
        "pass": not failures,
        "failures": failures,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
