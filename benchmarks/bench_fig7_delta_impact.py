"""Figure 7: impact of the delta parameter on the progressive indexes.

Regenerates the four panels (first-query time, pay-off, convergence,
cumulative time) over a delta grid and checks the qualitative shape reported
in the paper.
"""

from repro.experiments.delta_impact import run_delta_impact
from repro.experiments.reporting import render_delta_impact


def test_fig7_delta_impact(benchmark, bench_config):
    result = benchmark.pedantic(
        run_delta_impact,
        args=(bench_config,),
        kwargs={"deltas": (0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_delta_impact(result))

    for algorithm in result.algorithms():
        rows = result.for_algorithm(algorithm)
        # Figure 7a: the first query gets more expensive as delta grows.
        assert rows[-1].first_query_seconds > rows[0].first_query_seconds
        # Figure 7c: with delta = 1 the index converges within a handful of
        # queries; with the smallest delta it takes (much) longer, if at all.
        assert rows[-1].convergence_query is not None
        small_delta_convergence = rows[0].convergence_query
        assert small_delta_convergence is None or (
            rows[-1].convergence_query <= small_delta_convergence
        )

    # Figure 7a: Bucketsort is hit hardest by a large delta, Quicksort least.
    first_query_at_max_delta = {
        algorithm: result.for_algorithm(algorithm)[-1].first_query_seconds
        for algorithm in result.algorithms()
    }
    assert first_query_at_max_delta["PQ"] <= first_query_at_max_delta["PB"]

    benchmark.extra_info["first_query_at_delta_1"] = {
        name: round(value, 5) for name, value in first_query_at_max_delta.items()
    }
