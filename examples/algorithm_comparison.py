"""Compare every indexing algorithm of the paper on one synthetic workload.

Runs the baselines (FS, FI), the cracking family (STD, STC, PSTC, CGI, AA)
and the four progressive indexes (PQ, PMSD, PLSD, PB) on a sequential range
workload over skewed data — the combination where the differences between the
families are the most visible — and prints a Table-2-style summary.

Run with::

    python examples/algorithm_comparison.py [pattern]

where ``pattern`` is one of the Figure 6 workload names (default: SeqOver).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Column
from repro.core.budget import AdaptiveBudget
from repro.core.calibration import calibrate
from repro.engine import ALGORITHMS, PROGRESSIVE_ALGORITHMS, WorkloadExecutor
from repro.experiments.reporting import format_count, format_seconds, render_table
from repro.workloads import generate_pattern, skewed_data


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "SeqOver"
    rng = np.random.default_rng(11)
    n_elements = 500_000
    n_queries = 200

    print(f"Data: {n_elements:,} skewed integers; workload: {pattern}, {n_queries} queries")
    data = skewed_data(n_elements, rng=rng)
    workload = generate_pattern(
        pattern, int(data.min()), int(data.max()), n_queries, selectivity=0.1, rng=rng
    )
    constants = calibrate()
    executor = WorkloadExecutor()

    rows = []
    for name in ("FS", "FI", "STD", "STC", "PSTC", "CGI", "AA", "PQ", "PMSD", "PLSD", "PB"):
        column = Column(data, name="value")
        if name in PROGRESSIVE_ALGORITHMS:
            index = ALGORITHMS[name](
                column, budget=AdaptiveBudget(scan_fraction=0.2), constants=constants
            )
        else:
            index = ALGORITHMS[name](column, constants=constants)
        execution = executor.run(index, workload)
        metrics = execution.metrics()
        rows.append(
            [
                name,
                format_seconds(metrics.first_query_seconds),
                format_count(metrics.convergence_query),
                format_seconds(metrics.robustness_variance),
                format_seconds(metrics.cumulative_seconds),
                format_count(metrics.payoff_query),
            ]
        )
        print(f"  finished {name}")

    print()
    print(
        render_table(
            ["Index", "First Q (s)", "Convergence", "Robustness", "Cumulative (s)", "Pay-off"],
            rows,
            title=f"Algorithm comparison on the {pattern} workload",
        )
    )


if __name__ == "__main__":
    main()
