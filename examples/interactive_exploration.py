"""Interactive data exploration on a SkyServer-like data set.

This is the scenario that motivates the paper: a data scientist loads a large
opaque data set and immediately starts exploring it with range queries whose
focus drifts over time.  The example compares three strategies side by side:

* never indexing (full scans),
* building a full index upfront on the first query,
* Progressive Quicksort with an adaptive budget of 20% of the scan cost.

It prints the first-query penalty, the per-query behaviour around the phase
transitions, and the cumulative time of the whole exploration session.

Run with::

    python examples/interactive_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import Column, FullIndex, FullScan, ProgressiveQuicksort
from repro.core.budget import AdaptiveBudget
from repro.core.calibration import calibrate
from repro.engine import WorkloadExecutor
from repro.workloads import skyserver_data, skyserver_workload


def main() -> None:
    rng = np.random.default_rng(7)
    n_elements = 1_000_000
    n_queries = 300

    print("Synthesising a SkyServer-like right-ascension column and query log...")
    data = skyserver_data(n_elements, rng=rng)
    workload = skyserver_workload(n_queries, rng=rng)
    constants = calibrate()
    executor = WorkloadExecutor()

    strategies = {
        "full scan (no index)": lambda column: FullScan(column, constants=constants),
        "full index upfront": lambda column: FullIndex(column, constants=constants),
        "progressive quicksort": lambda column: ProgressiveQuicksort(
            column, budget=AdaptiveBudget(scan_fraction=0.2), constants=constants
        ),
    }

    results = {}
    for label, factory in strategies.items():
        index = factory(Column(data, name="ra"))
        execution = executor.run(index, workload)
        results[label] = execution
        metrics = execution.metrics()
        print(f"\n=== {label} ===")
        print(f"  first query      : {metrics.first_query_seconds * 1000:8.2f} ms "
              f"({metrics.first_query_seconds / execution.scan_seconds:5.1f}x the scan cost)")
        print(f"  cumulative time  : {metrics.cumulative_seconds:8.3f} s")
        print(f"  robustness (var) : {metrics.robustness_variance:.3e}")
        convergence = metrics.convergence_query or "never"
        print(f"  converged at     : query {convergence}")

    progressive = results["progressive quicksort"]
    print("\nPhase transitions of the progressive index:")
    for query_number, phase in progressive.phase_transitions():
        print(f"  query {query_number:>4}: {phase.value}")

    scans = results["full scan (no index)"].metrics().cumulative_seconds
    progressive_total = progressive.metrics().cumulative_seconds
    print(
        f"\nThe exploration session ran {scans / progressive_total:.1f}x faster with "
        "progressive indexing than with full scans, without the upfront stall of a "
        "full index."
    )


if __name__ == "__main__":
    main()
