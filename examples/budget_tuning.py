"""Explore the indexing-budget trade-off (the Figure 7 experiment in miniature).

Sweeps the fixed delta parameter for Progressive Quicksort and Progressive
Radixsort (MSD), then contrasts the best fixed setting with the adaptive
budget that the paper recommends for interactive sessions.

Run with::

    python examples/budget_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import Column, ProgressiveQuicksort, ProgressiveRadixsortMSD
from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.calibration import calibrate
from repro.engine import WorkloadExecutor
from repro.experiments.reporting import format_count, format_seconds, render_table
from repro.workloads import skyserver_data, skyserver_workload


def main() -> None:
    rng = np.random.default_rng(3)
    n_elements = 500_000
    n_queries = 250
    deltas = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)

    data = skyserver_data(n_elements, rng=rng)
    workload = skyserver_workload(n_queries, rng=rng)
    constants = calibrate()
    executor = WorkloadExecutor()

    rows = []
    for algorithm_name, algorithm in (
        ("PQ", ProgressiveQuicksort),
        ("PMSD", ProgressiveRadixsortMSD),
    ):
        for delta in deltas:
            index = algorithm(Column(data, name="ra"), budget=FixedBudget(delta), constants=constants)
            metrics = executor.run(index, workload).metrics()
            rows.append(
                [
                    algorithm_name,
                    f"fixed delta={delta:g}",
                    format_seconds(metrics.first_query_seconds),
                    format_count(metrics.convergence_query),
                    format_seconds(metrics.cumulative_seconds),
                ]
            )
        index = algorithm(
            Column(data, name="ra"),
            budget=AdaptiveBudget(scan_fraction=0.2),
            constants=constants,
        )
        metrics = executor.run(index, workload).metrics()
        rows.append(
            [
                algorithm_name,
                "adaptive (20% of scan)",
                format_seconds(metrics.first_query_seconds),
                format_count(metrics.convergence_query),
                format_seconds(metrics.cumulative_seconds),
            ]
        )

    print(
        render_table(
            ["Index", "Budget", "First Q (s)", "Convergence", "Cumulative (s)"],
            rows,
            title="Impact of the indexing budget (SkyServer-like workload)",
        )
    )
    print(
        "\nLarger deltas make the first queries slower but converge sooner; the "
        "adaptive budget keeps every query at ~1.2x the scan cost until the index "
        "is built."
    )


if __name__ == "__main__":
    main()
