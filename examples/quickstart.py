"""Quickstart: index a column progressively while querying it.

Creates a table with one numeric column, lets the Figure 11 decision tree
pick a progressive indexing algorithm, and runs a stream of range queries.
Every query stays within the configured indexing budget (20% of a scan) and
the index converges to a full B+-tree as a side effect of the workload.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Column, IndexingSession, Predicate


def main() -> None:
    rng = np.random.default_rng(42)
    n_elements = 1_000_000

    print(f"Generating a column with {n_elements:,} uniformly distributed integers...")
    data = rng.integers(0, n_elements, size=n_elements, dtype=np.int64)
    session = IndexingSession(Column(data, name="measurement"))

    # Let the decision tree pick the algorithm (uniform integer data and a
    # range-query workload recommend Progressive Radixsort MSD).
    index = session.create_index("measurement", budget_fraction=0.2)
    print(f"Decision tree selected: {index.describe()}")

    print("\nRunning 200 range queries (selectivity 1%)...")
    width = n_elements // 100
    previous_phase = None
    for query_number in range(1, 201):
        low = int(rng.integers(0, n_elements - width))
        started = time.perf_counter()
        result = session.between("measurement", low, low + width)
        elapsed = (time.perf_counter() - started) * 1000
        phase = index.phase.value
        if phase != previous_phase:
            print(f"  query {query_number:>4}: phase -> {phase}")
            previous_phase = phase
        if query_number in (1, 10, 50, 100, 200):
            print(
                f"  query {query_number:>4}: {result.count:>8,} rows, "
                f"sum={result.value_sum:>16,}  ({elapsed:.2f} ms)"
            )

    print("\nIndex status after the workload:")
    for column_name, status in session.status().items():
        print(f"  {column_name}: {status}")

    # Verify the final answer against a plain NumPy scan.
    predicate = Predicate(1_000, 1_000 + width)
    result = session.between("measurement", predicate.low, predicate.high)
    mask = (data >= predicate.low) & (data <= predicate.high)
    assert result.count == int(mask.sum())
    assert result.value_sum == data[mask].sum()
    print("\nAnswers verified against a full scan — done.")


if __name__ == "__main__":
    main()
